//! Composable, deterministic fault injection for the radio channel.
//!
//! The paper's model is a *clean* synchronous channel: the only way to
//! lose a message is a collision. This module layers adversity on top —
//! i.i.d. reception loss, bursty per-edge loss, crash/recover
//! schedules, budgeted jamming, wake-up corruption — behind one
//! [`FaultModel`] trait with per-round hooks, so experiments can map
//! *where the w.h.p. guarantees break* without touching protocol code.
//!
//! ## Zero cost when disabled
//!
//! The engine is generic over its fault model
//! (`Engine<N, F = NoFaults>`). [`NoFaults`] sets the associated
//! constant [`FaultModel::ENABLED`] to `false`, and every fault hook in
//! the hot loop is guarded by `if F::ENABLED { … }` — monomorphization
//! deletes the branches, so a fault-free engine compiles to exactly the
//! loop it had before this module existed (`scripts/perf_gate.sh`
//! enforces this).
//!
//! ## Determinism contract
//!
//! Every model draws all of its randomness from
//! [`crate::rng::stream`] with a model-specific salt
//! ([`crate::rng::salts`]), seeded at construction. Given the same
//! seed, graph and protocol schedule, a faulted run is bit-identical
//! across executions, thread counts and platforms — the same contract
//! the rest of the workspace upholds. Model state advances only inside
//! the engine's round loop (never lazily on harness queries), so the
//! query pattern cannot perturb the streams.
//!
//! ## Hook semantics (what the engine does with each answer)
//!
//! * [`FaultModel::begin_round`] — advance timelines; report
//!   crash/recover transitions into the round's [`FaultEvents`].
//! * [`FaultModel::is_crashed`] — a crashed node is not polled, cannot
//!   transmit, receives nothing and wakes from nothing; its protocol
//!   state is retained and resumes on recovery (fail-stop/recover).
//! * [`FaultModel::jam`] — given the round's transmitters, name the
//!   listeners silenced by jamming (they hear noise: no reception, no
//!   wake-up).
//! * [`FaultModel::drop_delivery`] — suppress one otherwise-successful
//!   reception (channel loss).
//! * [`FaultModel::corrupt_wakeup`] — a sleeping node's would-be first
//!   reception fizzles: it neither wakes nor receives.
//!
//! Runtime-configurable experiments parse a [`FaultSpec`] (compact
//! `kind:key=val,…` strings composable with `+`) and run the
//! [`BuiltFaults`] it builds; statically chosen models monomorphize.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::Error;
use crate::graph::{Graph, NodeId};
use crate::rng::{self, salts};

/// Per-round fault occurrences, reported by the engine alongside the
/// ordinary channel events (see [`crate::session::RoundEvents`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultEvents {
    /// Nodes that crashed at the start of this round.
    pub crashes: usize,
    /// Nodes that recovered at the start of this round.
    pub recoveries: usize,
    /// Successful receptions suppressed by channel loss — a model's
    /// [`FaultModel::drop_delivery`] or the engine's legacy `set_loss`
    /// noise (which is a [`UniformLoss`] under the hood).
    pub dropped: usize,
    /// Listener-rounds silenced by jamming (the listener had at least
    /// one transmitting neighbor but heard only noise).
    pub jammed: usize,
    /// Would-be receptions lost because the listener was crashed.
    pub crashed_rx: usize,
    /// First receptions that failed to wake a sleeping node
    /// ([`FaultModel::corrupt_wakeup`]); the message is lost too.
    pub wakeups_suppressed: usize,
}

impl FaultEvents {
    /// Total receptions this round lost to faults (any cause).
    #[must_use]
    pub fn lost_receptions(&self) -> usize {
        self.dropped + self.jammed + self.crashed_rx + self.wakeups_suppressed
    }
}

/// The engine's read-only view of one round's channel activity, handed
/// to [`FaultModel::jam`] so a jammer can target neighborhoods.
#[derive(Debug)]
pub struct ChannelView<'a> {
    /// The simulated topology.
    pub graph: &'a Graph,
    /// Ids of this round's transmitters (deterministic engine order).
    pub transmitters: &'a [u32],
}

/// A composable per-round fault model driven by the engine.
///
/// All hooks default to benign no-ops, so a model implements only the
/// failure modes it cares about. See the [module docs](self) for the
/// exact engine semantics of each hook and the determinism contract.
pub trait FaultModel {
    /// `false` only for [`NoFaults`]: every engine fault hook is
    /// guarded by this constant, so a `NoFaults` engine monomorphizes
    /// to the fault-free hot loop.
    const ENABLED: bool = true;

    /// Called once at the start of every round, before any node is
    /// polled. Timeline models apply their scheduled transitions here
    /// and report them into `events`.
    fn begin_round(&mut self, round: u64, events: &mut FaultEvents) {
        let _ = (round, events);
    }

    /// Whether `node` is crashed during this round (checked after
    /// [`FaultModel::begin_round`]).
    fn is_crashed(&self, node: usize) -> bool {
        let _ = node;
        false
    }

    /// Names the listeners silenced by jamming this round, given the
    /// transmitter set. Append jammed node ids to `jammed` (duplicates
    /// are harmless).
    fn jam(&mut self, round: u64, view: &ChannelView<'_>, jammed: &mut Vec<u32>) {
        let _ = (round, view, jammed);
    }

    /// Whether to suppress the otherwise-successful delivery
    /// `from → to` this round. Called once per candidate delivery, in
    /// ascending listener order (the engine's deterministic phase-3
    /// order), so stream consumption is reproducible.
    fn drop_delivery(&mut self, round: u64, from: usize, to: usize) -> bool {
        let _ = (round, from, to);
        false
    }

    /// Whether the first reception that would wake sleeping `node`
    /// fizzles instead (no wake-up, message lost).
    fn corrupt_wakeup(&mut self, round: u64, node: usize) -> bool {
        let _ = (round, node);
        false
    }
}

/// The clean channel: no faults, and — via
/// [`FaultModel::ENABLED`]` = false` — no fault-hook code in the
/// monomorphized engine at all. This is the paper's model and the
/// engine default.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    const ENABLED: bool = false;
}

/// I.i.d. reception loss: every successful delivery is independently
/// dropped with a fixed probability.
///
/// This subsumes the engine's historical `set_loss` path (which now
/// stores one of these): same salt, same draw order, so fixed-seed
/// lossy runs are bit-identical to the pre-subsystem behavior whether
/// the loss is configured through `set_loss` or as a fault model.
#[derive(Clone, Debug)]
pub struct UniformLoss {
    rate: f64,
    rng: SmallRng,
}

impl UniformLoss {
    /// A uniform-loss model dropping each delivery with probability
    /// `rate`, sampled from a stream derived from `seed`.
    ///
    /// # Errors
    ///
    /// Rejects NaN and rates outside `[0, 1)` (a rate of 1 would make
    /// every run trivially fail).
    pub fn new(rate: f64, seed: u64) -> Result<Self, Error> {
        if rate.is_nan() {
            return Err(Error::InvalidParameter {
                reason: format!("loss rate {rate} is NaN; must be in [0, 1)"),
            });
        }
        if !(0.0..1.0).contains(&rate) {
            return Err(Error::InvalidParameter {
                reason: format!("loss rate {rate} must be in [0, 1)"),
            });
        }
        Ok(UniformLoss {
            rate,
            rng: rng::stream(seed, salts::LOSS),
        })
    }

    /// The configured loss probability.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws one drop decision. Zero-rate models never touch the
    /// stream, matching the historical `set_loss(0, _) == no loss`.
    pub(crate) fn sample(&mut self) -> bool {
        self.rate > 0.0 && self.rng.gen_bool(self.rate)
    }
}

impl FaultModel for UniformLoss {
    fn drop_delivery(&mut self, _round: u64, _from: usize, _to: usize) -> bool {
        self.sample()
    }
}

/// Samples a geometric sojourn time: the number of rounds until a
/// transition that fires each round with probability `p`. `p <= 0`
/// means "never" (`u64::MAX`).
fn sojourn(rng: &mut SmallRng, p: f64) -> u64 {
    if p <= 0.0 {
        return u64::MAX;
    }
    if p >= 1.0 {
        return 1;
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    // Inverse-transform geometric: ceil(ln(1-u) / ln(1-p)) >= 1.
    let t = ((1.0 - u).ln() / (1.0 - p).ln()).ceil();
    if t.is_finite() && t < 9e18 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            (t as u64).max(1)
        }
    } else {
        u64::MAX
    }
}

/// One edge's two-state Markov channel, evolved lazily but pinned to
/// absolute rounds: state flips are presampled as "next flip round"
/// sojourns, so when a flip happens never depends on when the edge is
/// queried.
#[derive(Clone, Debug)]
struct EdgeChannel {
    rng: SmallRng,
    bad: bool,
    next_flip: u64,
}

impl EdgeChannel {
    fn new(seed: u64, edge_salt: u64, p_bad: f64) -> Self {
        let mut rng = rng::stream(seed, salts::GILBERT ^ edge_salt);
        let first = sojourn(&mut rng, p_bad);
        EdgeChannel {
            rng,
            bad: false,
            next_flip: first,
        }
    }

    fn advance(&mut self, round: u64, p_bad: f64, p_good: f64) {
        while self.next_flip != u64::MAX && round >= self.next_flip {
            self.bad = !self.bad;
            let p = if self.bad { p_good } else { p_bad };
            let s = sojourn(&mut self.rng, p);
            self.next_flip = self.next_flip.saturating_add(s);
        }
    }
}

/// Bursty per-edge loss: each undirected edge is an independent
/// Gilbert–Elliott channel, a two-state Markov chain alternating
/// between a *good* state (loss `loss_good`) and a *bad* state (loss
/// `loss_bad`), entering bad with per-round probability `p_bad` and
/// leaving it with `p_good`. Mean burst length is `1 / p_good` rounds.
///
/// Each edge derives its own RNG stream from the seed and the edge
/// key, so the set of edges actually exercised does not perturb the
/// other edges' burst timelines.
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    seed: u64,
    p_bad: f64,
    p_good: f64,
    loss_good: f64,
    loss_bad: f64,
    edges: HashMap<(u32, u32), EdgeChannel>,
}

impl GilbertElliott {
    /// A bursty-loss model; see the type docs for the parameters.
    ///
    /// # Errors
    ///
    /// Rejects NaN anywhere, transition probabilities outside `[0, 1]`
    /// and loss rates outside `[0, 1)`.
    pub fn new(
        p_bad: f64,
        p_good: f64,
        loss_good: f64,
        loss_bad: f64,
        seed: u64,
    ) -> Result<Self, Error> {
        for (name, v) in [("p_bad", p_bad), ("p_good", p_good)] {
            if v.is_nan() || !(0.0..=1.0).contains(&v) {
                return Err(Error::InvalidParameter {
                    reason: format!("Gilbert-Elliott {name} = {v} must be in [0, 1]"),
                });
            }
        }
        for (name, v) in [("loss_good", loss_good), ("loss_bad", loss_bad)] {
            if v.is_nan() || !(0.0..1.0).contains(&v) {
                return Err(Error::InvalidParameter {
                    reason: format!("Gilbert-Elliott {name} = {v} must be in [0, 1)"),
                });
            }
        }
        Ok(GilbertElliott {
            seed,
            p_bad,
            p_good,
            loss_good,
            loss_bad,
            edges: HashMap::new(),
        })
    }
}

impl FaultModel for GilbertElliott {
    fn drop_delivery(&mut self, round: u64, from: usize, to: usize) -> bool {
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        let key = (lo as u32, hi as u32);
        let edge_salt = (u64::from(key.0) << 32) | u64::from(key.1);
        let (seed, p_bad, p_good) = (self.seed, self.p_bad, self.p_good);
        let ch = self
            .edges
            .entry(key)
            .or_insert_with(|| EdgeChannel::new(seed, edge_salt, p_bad));
        ch.advance(round, p_bad, p_good);
        let p = if ch.bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        p > 0.0 && ch.rng.gen_bool(p)
    }
}

/// Deterministic seeded crash/recover timelines: a seeded fraction of
/// the nodes crash at seeded rounds inside a window, each recovering
/// after a fixed downtime (or never). Crashed nodes are fail-stop with
/// retained state — see [`FaultModel::is_crashed`] for the engine
/// semantics.
#[derive(Clone, Debug)]
pub struct CrashSchedule {
    crashed: Vec<bool>,
    /// `(round, node, crash?)` sorted by round; applied in
    /// [`FaultModel::begin_round`].
    timeline: Vec<(u64, u32, bool)>,
    next: usize,
}

impl CrashSchedule {
    /// Builds a timeline for `n` nodes: `round(fraction · n)` distinct
    /// victims (chosen by a seeded shuffle) each crash at a seeded
    /// round in `[from, until)` and recover `downtime` rounds later
    /// (`None` = never).
    ///
    /// # Errors
    ///
    /// Rejects NaN or out-of-`[0, 1]` fractions, empty windows
    /// (`until <= from`) and a zero downtime.
    pub fn new(
        n: usize,
        fraction: f64,
        from: u64,
        until: u64,
        downtime: Option<u64>,
        seed: u64,
    ) -> Result<Self, Error> {
        if fraction.is_nan() || !(0.0..=1.0).contains(&fraction) {
            return Err(Error::InvalidParameter {
                reason: format!("crash fraction {fraction} must be in [0, 1]"),
            });
        }
        if until <= from {
            return Err(Error::InvalidParameter {
                reason: format!("crash window [{from}, {until}) is empty"),
            });
        }
        if downtime == Some(0) {
            return Err(Error::InvalidParameter {
                reason: "crash downtime must be at least 1 round (use None for never)".into(),
            });
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let count = ((fraction * n as f64).round() as usize).min(n);
        let mut ids: Vec<u32> = (0..n)
            .map(|i| u32::try_from(i).expect("node count fits u32"))
            .collect();
        let mut rng = rng::stream(seed, salts::CRASH);
        ids.shuffle(&mut rng);
        let mut timeline = Vec::with_capacity(2 * count);
        for &id in &ids[..count] {
            let crash_at = rng.gen_range(from..until);
            timeline.push((crash_at, id, true));
            if let Some(d) = downtime {
                timeline.push((crash_at.saturating_add(d), id, false));
            }
        }
        timeline.sort_unstable();
        Ok(CrashSchedule {
            crashed: vec![false; n],
            timeline,
            next: 0,
        })
    }

    /// The scheduled `(round, node, crash?)` transitions, in round
    /// order (harness-side inspection).
    #[must_use]
    pub fn timeline(&self) -> &[(u64, u32, bool)] {
        &self.timeline
    }
}

impl FaultModel for CrashSchedule {
    fn begin_round(&mut self, round: u64, events: &mut FaultEvents) {
        while let Some(&(at, node, crash)) = self.timeline.get(self.next) {
            if at > round {
                break;
            }
            self.next += 1;
            if self.crashed[node as usize] != crash {
                self.crashed[node as usize] = crash;
                if crash {
                    events.crashes += 1;
                } else {
                    events.recoveries += 1;
                }
            }
        }
    }

    fn is_crashed(&self, node: usize) -> bool {
        self.crashed[node]
    }
}

/// A budgeted adversarial jammer: each round it may spend one unit of
/// budget to jam the *densest transmitting neighborhood* — the
/// transmitter whose neighbors contain the most would-be-successful
/// receptions (ties broken toward the lowest transmitter id). Every
/// non-transmitting neighbor of the chosen transmitter hears noise
/// that round. Budget is only spent when at least one reception would
/// actually be disrupted.
#[derive(Clone, Debug)]
pub struct AdversarialJammer {
    budget: u64,
    is_tx: Vec<bool>,
    heard: HashMap<u32, u32>,
}

impl AdversarialJammer {
    /// A jammer allowed to jam for `budget` rounds in total.
    #[must_use]
    pub fn new(budget: u64) -> Self {
        AdversarialJammer {
            budget,
            is_tx: Vec::new(),
            heard: HashMap::new(),
        }
    }

    /// Budget not yet spent.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.budget
    }
}

impl FaultModel for AdversarialJammer {
    fn jam(&mut self, _round: u64, view: &ChannelView<'_>, jammed: &mut Vec<u32>) {
        if self.budget == 0 || view.transmitters.is_empty() {
            return;
        }
        if self.is_tx.len() < view.graph.len() {
            self.is_tx.resize(view.graph.len(), false);
        }
        for &t in view.transmitters {
            self.is_tx[t as usize] = true;
        }
        // Per-listener transmitting-neighbor counts, confined to the
        // transmitters' neighborhoods (mirrors the engine's own
        // phase-2 cost bound).
        self.heard.clear();
        for &t in view.transmitters {
            for &v in view.graph.neighbors(NodeId::new(t as usize)) {
                *self
                    .heard
                    .entry(u32::try_from(v.index()).expect("node fits u32"))
                    .or_insert(0) += 1;
            }
        }
        // The target: the transmitter whose neighborhood holds the
        // most would-be receptions; lowest id wins ties. Iterating the
        // deterministic transmitter list keeps this reproducible.
        let mut best: Option<(u32, usize)> = None;
        for &t in view.transmitters {
            let mut score = 0usize;
            for &v in view.graph.neighbors(NodeId::new(t as usize)) {
                let vi = u32::try_from(v.index()).expect("node fits u32");
                if !self.is_tx[v.index()] && self.heard.get(&vi) == Some(&1) {
                    score += 1;
                }
            }
            best = match best {
                None => Some((t, score)),
                Some((bt, bs)) if score > bs || (score == bs && t < bt) => Some((t, score)),
                keep => keep,
            };
        }
        for &t in view.transmitters {
            self.is_tx[t as usize] = false;
        }
        if let Some((t, score)) = best {
            if score > 0 {
                self.budget -= 1;
                jammed.extend(
                    view.graph
                        .neighbors(NodeId::new(t as usize))
                        .iter()
                        .map(|v| u32::try_from(v.index()).expect("node fits u32")),
                );
            }
        }
    }
}

/// Wake-up corruption: each first reception that would wake a sleeping
/// node instead fizzles with a fixed probability (the node stays
/// asleep and the message is lost). Models the paper's wake-on-first-
/// reception rule failing — e.g. a radio missing its own wake
/// interrupt.
#[derive(Clone, Debug)]
pub struct WakeupCorrupt {
    rate: f64,
    rng: SmallRng,
}

impl WakeupCorrupt {
    /// Corrupts each would-be wake-up independently with probability
    /// `rate` (1 = radio-triggered wake-ups never succeed).
    ///
    /// # Errors
    ///
    /// Rejects NaN and rates outside `[0, 1]`.
    pub fn new(rate: f64, seed: u64) -> Result<Self, Error> {
        if rate.is_nan() || !(0.0..=1.0).contains(&rate) {
            return Err(Error::InvalidParameter {
                reason: format!("wakeup corruption rate {rate} must be in [0, 1]"),
            });
        }
        Ok(WakeupCorrupt {
            rate,
            rng: rng::stream(seed, salts::WAKEUP),
        })
    }
}

impl FaultModel for WakeupCorrupt {
    fn corrupt_wakeup(&mut self, _round: u64, _node: usize) -> bool {
        self.rate > 0.0 && self.rng.gen_bool(self.rate)
    }
}

/// Two fault models composed: both see every hook, and a delivery (or
/// wake-up) survives only if *neither* suppresses it. Both models are
/// always consulted — no short-circuiting — so each one's RNG stream
/// advances identically whether or not the other fired.
#[derive(Clone, Copy, Debug)]
pub struct Stacked<A, B>(pub A, pub B);

impl<A: FaultModel, B: FaultModel> FaultModel for Stacked<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn begin_round(&mut self, round: u64, events: &mut FaultEvents) {
        self.0.begin_round(round, events);
        self.1.begin_round(round, events);
    }

    fn is_crashed(&self, node: usize) -> bool {
        self.0.is_crashed(node) || self.1.is_crashed(node)
    }

    fn jam(&mut self, round: u64, view: &ChannelView<'_>, jammed: &mut Vec<u32>) {
        self.0.jam(round, view, jammed);
        self.1.jam(round, view, jammed);
    }

    fn drop_delivery(&mut self, round: u64, from: usize, to: usize) -> bool {
        let a = self.0.drop_delivery(round, from, to);
        let b = self.1.drop_delivery(round, from, to);
        a | b
    }

    fn corrupt_wakeup(&mut self, round: u64, node: usize) -> bool {
        let a = self.0.corrupt_wakeup(round, node);
        let b = self.1.corrupt_wakeup(round, node);
        a | b
    }
}

/// A runtime-chosen fault model: the dynamically dispatched counterpart
/// of the statically monomorphized models, built from a [`FaultSpec`].
/// Always `ENABLED` — use [`NoFaults`] statically when the clean hot
/// loop matters.
#[derive(Clone, Debug)]
pub enum BuiltFaults {
    /// No faults (but with the hooks compiled in).
    None,
    /// [`UniformLoss`].
    Uniform(UniformLoss),
    /// [`GilbertElliott`].
    Gilbert(GilbertElliott),
    /// [`CrashSchedule`].
    Crash(CrashSchedule),
    /// [`AdversarialJammer`].
    Jam(AdversarialJammer),
    /// [`WakeupCorrupt`].
    Wakeup(WakeupCorrupt),
    /// All the contained models, composed like [`Stacked`] (every
    /// model sees every hook; suppressions are OR-ed).
    Stack(Vec<BuiltFaults>),
}

impl FaultModel for BuiltFaults {
    fn begin_round(&mut self, round: u64, events: &mut FaultEvents) {
        match self {
            BuiltFaults::Crash(m) => m.begin_round(round, events),
            BuiltFaults::Stack(ms) => {
                for m in ms {
                    m.begin_round(round, events);
                }
            }
            _ => {}
        }
    }

    fn is_crashed(&self, node: usize) -> bool {
        match self {
            BuiltFaults::Crash(m) => m.is_crashed(node),
            BuiltFaults::Stack(ms) => ms.iter().any(|m| m.is_crashed(node)),
            _ => false,
        }
    }

    fn jam(&mut self, round: u64, view: &ChannelView<'_>, jammed: &mut Vec<u32>) {
        match self {
            BuiltFaults::Jam(m) => m.jam(round, view, jammed),
            BuiltFaults::Stack(ms) => {
                for m in ms {
                    m.jam(round, view, jammed);
                }
            }
            _ => {}
        }
    }

    fn drop_delivery(&mut self, round: u64, from: usize, to: usize) -> bool {
        match self {
            BuiltFaults::Uniform(m) => m.drop_delivery(round, from, to),
            BuiltFaults::Gilbert(m) => m.drop_delivery(round, from, to),
            BuiltFaults::Stack(ms) => {
                let mut any = false;
                for m in ms {
                    any |= m.drop_delivery(round, from, to);
                }
                any
            }
            _ => false,
        }
    }

    fn corrupt_wakeup(&mut self, round: u64, node: usize) -> bool {
        match self {
            BuiltFaults::Wakeup(m) => m.corrupt_wakeup(round, node),
            BuiltFaults::Stack(ms) => {
                let mut any = false;
                for m in ms {
                    any |= m.corrupt_wakeup(round, node);
                }
                any
            }
            _ => false,
        }
    }
}

/// A declarative, parse-and-printable fault configuration — the form
/// experiment binaries, sweep drivers and environment variables carry
/// around. [`FaultSpec::build`] turns it into runnable [`BuiltFaults`]
/// for a concrete network size and seed.
///
/// The text format is `kind:key=val,key=val`, composable with `+`:
///
/// * `none`
/// * `uniform:rate=0.1` (or shorthand `uniform:0.1`)
/// * `ge:p_bad=0.01,p_good=0.1,loss_good=0,loss_bad=0.9`
/// * `crash:frac=0.25,from=0,until=4000,down=2000` (`down` omitted =
///   crashed nodes never recover; shorthand `crash:0.25` uses the
///   given fraction with window `[0, u64::MAX)` and no recovery)
/// * `jam:budget=500` (or shorthand `jam:500`)
/// * `wakeup:rate=0.5` (or shorthand `wakeup:0.5`)
/// * `uniform:rate=0.05+crash:frac=0.1,from=0,until=1000` (stacked)
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// No faults.
    None,
    /// I.i.d. loss at `rate` — see [`UniformLoss`].
    Uniform {
        /// Per-delivery drop probability in `[0, 1)`.
        rate: f64,
    },
    /// Bursty per-edge loss — see [`GilbertElliott`].
    Gilbert {
        /// Per-round probability of an edge entering its bad state.
        p_bad: f64,
        /// Per-round probability of leaving the bad state.
        p_good: f64,
        /// Loss probability while good.
        loss_good: f64,
        /// Loss probability while bad.
        loss_bad: f64,
    },
    /// Seeded crash/recover timeline — see [`CrashSchedule`].
    Crash {
        /// Fraction of nodes that crash, in `[0, 1]`.
        fraction: f64,
        /// Crash rounds are drawn from `[from, until)`.
        from: u64,
        /// Exclusive end of the crash window.
        until: u64,
        /// Rounds until recovery (`None` = never).
        downtime: Option<u64>,
    },
    /// Budgeted neighborhood jamming — see [`AdversarialJammer`].
    Jam {
        /// Total rounds the jammer may jam.
        budget: u64,
    },
    /// Wake-up corruption — see [`WakeupCorrupt`].
    Wakeup {
        /// Per-wake-up corruption probability in `[0, 1]`.
        rate: f64,
    },
    /// All the contained specs, stacked.
    Stack(Vec<FaultSpec>),
}

impl FaultSpec {
    /// `true` if this spec injects nothing.
    #[must_use]
    pub fn is_none(&self) -> bool {
        match self {
            FaultSpec::None => true,
            FaultSpec::Stack(v) => v.iter().all(FaultSpec::is_none),
            _ => false,
        }
    }

    /// Builds the runnable model for an `n`-node network, all streams
    /// derived from `seed`. Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for out-of-range parameters
    /// (see each model's constructor).
    pub fn build(&self, n: usize, seed: u64) -> Result<BuiltFaults, Error> {
        Ok(match *self {
            FaultSpec::None => BuiltFaults::None,
            FaultSpec::Uniform { rate } => BuiltFaults::Uniform(UniformLoss::new(rate, seed)?),
            FaultSpec::Gilbert {
                p_bad,
                p_good,
                loss_good,
                loss_bad,
            } => BuiltFaults::Gilbert(GilbertElliott::new(
                p_bad, p_good, loss_good, loss_bad, seed,
            )?),
            FaultSpec::Crash {
                fraction,
                from,
                until,
                downtime,
            } => BuiltFaults::Crash(CrashSchedule::new(
                n, fraction, from, until, downtime, seed,
            )?),
            FaultSpec::Jam { budget } => BuiltFaults::Jam(AdversarialJammer::new(budget)),
            FaultSpec::Wakeup { rate } => BuiltFaults::Wakeup(WakeupCorrupt::new(rate, seed)?),
            FaultSpec::Stack(ref specs) => {
                let mut models = Vec::with_capacity(specs.len());
                for s in specs {
                    models.push(s.build(n, seed)?);
                }
                BuiltFaults::Stack(models)
            }
        })
    }

    /// Stable label for tables and result files (re-parses to the same
    /// spec; same as the `Display` form).
    #[must_use]
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::None => write!(f, "none"),
            FaultSpec::Uniform { rate } => write!(f, "uniform:rate={rate}"),
            FaultSpec::Gilbert {
                p_bad,
                p_good,
                loss_good,
                loss_bad,
            } => write!(
                f,
                "ge:p_bad={p_bad},p_good={p_good},loss_good={loss_good},loss_bad={loss_bad}"
            ),
            FaultSpec::Crash {
                fraction,
                from,
                until,
                downtime,
            } => {
                write!(f, "crash:frac={fraction},from={from},until={until}")?;
                if let Some(d) = downtime {
                    write!(f, ",down={d}")?;
                }
                Ok(())
            }
            FaultSpec::Jam { budget } => write!(f, "jam:budget={budget}"),
            FaultSpec::Wakeup { rate } => write!(f, "wakeup:rate={rate}"),
            FaultSpec::Stack(specs) => {
                for (i, s) in specs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
        }
    }
}

fn bad_spec(reason: String) -> Error {
    Error::InvalidParameter { reason }
}

fn parse_f64(kind: &str, key: &str, val: &str) -> Result<f64, Error> {
    val.parse()
        .map_err(|_| bad_spec(format!("fault spec {kind}: {key}={val} is not a number")))
}

fn parse_u64(kind: &str, key: &str, val: &str) -> Result<u64, Error> {
    val.parse()
        .map_err(|_| bad_spec(format!("fault spec {kind}: {key}={val} is not an integer")))
}

/// Parses one `kind:args` component (no `+`).
fn parse_one(part: &str) -> Result<FaultSpec, Error> {
    let part = part.trim();
    let (kind, args) = match part.split_once(':') {
        Some((k, a)) => (k.trim(), a.trim()),
        None => (part, ""),
    };
    // key=val pairs; a single bare value maps to the kind's primary key.
    let mut kv: Vec<(&str, &str)> = Vec::new();
    if !args.is_empty() {
        for item in args.split(',') {
            let item = item.trim();
            match item.split_once('=') {
                Some((k, v)) => kv.push((k.trim(), v.trim())),
                None => kv.push(("", item)),
            }
        }
    }
    let lookup = |key: &str| kv.iter().find(|(k, _)| *k == key).map(|&(_, v)| v);
    // The shorthand (single bare value) is the kind's primary knob.
    let primary = |key: &str| {
        lookup(key).or(match kv.as_slice() {
            [("", v)] => Some(*v),
            _ => None,
        })
    };
    match kind {
        "none" => Ok(FaultSpec::None),
        "uniform" => {
            let rate = primary("rate")
                .ok_or_else(|| bad_spec("fault spec uniform: missing rate".into()))?;
            Ok(FaultSpec::Uniform {
                rate: parse_f64("uniform", "rate", rate)?,
            })
        }
        "ge" => {
            let get = |key: &str| {
                lookup(key).ok_or_else(|| bad_spec(format!("fault spec ge: missing {key}")))
            };
            Ok(FaultSpec::Gilbert {
                p_bad: parse_f64("ge", "p_bad", get("p_bad")?)?,
                p_good: parse_f64("ge", "p_good", get("p_good")?)?,
                loss_good: parse_f64("ge", "loss_good", get("loss_good")?)?,
                loss_bad: parse_f64("ge", "loss_bad", get("loss_bad")?)?,
            })
        }
        "crash" => {
            let frac =
                primary("frac").ok_or_else(|| bad_spec("fault spec crash: missing frac".into()))?;
            Ok(FaultSpec::Crash {
                fraction: parse_f64("crash", "frac", frac)?,
                from: lookup("from")
                    .map(|v| parse_u64("crash", "from", v))
                    .transpose()?
                    .unwrap_or(0),
                until: lookup("until")
                    .map(|v| parse_u64("crash", "until", v))
                    .transpose()?
                    .unwrap_or(u64::MAX),
                downtime: lookup("down")
                    .map(|v| parse_u64("crash", "down", v))
                    .transpose()?,
            })
        }
        "jam" => {
            let budget = primary("budget")
                .ok_or_else(|| bad_spec("fault spec jam: missing budget".into()))?;
            Ok(FaultSpec::Jam {
                budget: parse_u64("jam", "budget", budget)?,
            })
        }
        "wakeup" => {
            let rate = primary("rate")
                .ok_or_else(|| bad_spec("fault spec wakeup: missing rate".into()))?;
            Ok(FaultSpec::Wakeup {
                rate: parse_f64("wakeup", "rate", rate)?,
            })
        }
        other => Err(bad_spec(format!(
            "unknown fault kind {other:?} (expected none/uniform/ge/crash/jam/wakeup)"
        ))),
    }
}

impl FromStr for FaultSpec {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Error> {
        let s = s.trim();
        if s.is_empty() {
            return Err(bad_spec("empty fault spec".into()));
        }
        let parts: Vec<&str> = s.split('+').collect();
        if parts.len() == 1 {
            parse_one(parts[0])
        } else {
            let mut specs = Vec::with_capacity(parts.len());
            for p in parts {
                specs.push(parse_one(p)?);
            }
            Ok(FaultSpec::Stack(specs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_disabled_and_benign() {
        assert!(!NoFaults::ENABLED);
        let mut f = NoFaults;
        let mut ev = FaultEvents::default();
        f.begin_round(0, &mut ev);
        assert!(!f.is_crashed(0));
        assert!(!f.drop_delivery(0, 0, 1));
        assert!(!f.corrupt_wakeup(0, 1));
        assert_eq!(ev, FaultEvents::default());
    }

    #[test]
    fn uniform_loss_validates_and_matches_seed() {
        assert!(UniformLoss::new(f64::NAN, 0).is_err());
        assert!(UniformLoss::new(1.0, 0).is_err());
        assert!(UniformLoss::new(-0.1, 0).is_err());
        let mut a = UniformLoss::new(0.5, 7).unwrap();
        let mut b = UniformLoss::new(0.5, 7).unwrap();
        let da: Vec<bool> = (0..64).map(|_| a.sample()).collect();
        let db: Vec<bool> = (0..64).map(|_| b.sample()).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(|&d| d) && da.iter().any(|&d| !d));
        // Zero rate never draws (and never drops).
        let mut z = UniformLoss::new(0.0, 7).unwrap();
        assert!((0..64).all(|_| !z.sample()));
    }

    #[test]
    fn gilbert_elliott_bursts_and_is_deterministic() {
        // Certain loss while bad, none while good: the drop pattern on
        // one edge is exactly the bad-state indicator.
        let run = |seed: u64| -> Vec<bool> {
            let mut ge = GilbertElliott::new(0.05, 0.2, 0.0, 0.999_999, seed).unwrap();
            (0..400).map(|r| ge.drop_delivery(r, 0, 1)).collect()
        };
        let a = run(3);
        assert_eq!(a, run(3));
        assert_ne!(a, run(4));
        // Bursty: drops cluster — count state switches; i.i.d. loss of
        // the same mean would switch far more often.
        let switches = a.windows(2).filter(|w| w[0] != w[1]).count();
        let drops = a.iter().filter(|&&d| d).count();
        assert!(drops > 0, "bad state never entered");
        assert!(
            switches < drops,
            "no burstiness: {switches} switches for {drops} drops"
        );
    }

    #[test]
    fn gilbert_elliott_is_direction_symmetric() {
        let mut ge = GilbertElliott::new(0.5, 0.5, 0.0, 0.999_999, 1).unwrap();
        let mut ge2 = GilbertElliott::new(0.5, 0.5, 0.0, 0.999_999, 1).unwrap();
        let a: Vec<bool> = (0..100).map(|r| ge.drop_delivery(r, 2, 9)).collect();
        let b: Vec<bool> = (0..100).map(|r| ge2.drop_delivery(r, 9, 2)).collect();
        assert_eq!(a, b, "undirected edge must be one channel");
    }

    #[test]
    fn gilbert_validates() {
        assert!(GilbertElliott::new(1.5, 0.1, 0.0, 0.5, 0).is_err());
        assert!(GilbertElliott::new(0.1, f64::NAN, 0.0, 0.5, 0).is_err());
        assert!(GilbertElliott::new(0.1, 0.1, 0.0, 1.0, 0).is_err());
    }

    #[test]
    fn crash_schedule_applies_timeline_and_recovers() {
        // All nodes crash in [5, 6) (i.e. at round 5), down for 10.
        let mut cs = CrashSchedule::new(4, 1.0, 5, 6, Some(10), 0).unwrap();
        let mut ev = FaultEvents::default();
        cs.begin_round(4, &mut ev);
        assert_eq!(ev.crashes, 0);
        assert!(!cs.is_crashed(2));
        cs.begin_round(5, &mut ev);
        assert_eq!(ev.crashes, 4);
        assert!((0..4).all(|i| cs.is_crashed(i)));
        cs.begin_round(14, &mut ev);
        assert_eq!(ev.recoveries, 0);
        cs.begin_round(15, &mut ev);
        assert_eq!(ev.recoveries, 4);
        assert!((0..4).all(|i| !cs.is_crashed(i)));
    }

    #[test]
    fn crash_schedule_fraction_and_determinism() {
        let a = CrashSchedule::new(100, 0.25, 0, 1000, None, 9).unwrap();
        assert_eq!(a.timeline().len(), 25);
        let b = CrashSchedule::new(100, 0.25, 0, 1000, None, 9).unwrap();
        assert_eq!(a.timeline(), b.timeline());
        let c = CrashSchedule::new(100, 0.25, 0, 1000, None, 10).unwrap();
        assert_ne!(a.timeline(), c.timeline());
        assert!(CrashSchedule::new(4, 2.0, 0, 10, None, 0).is_err());
        assert!(CrashSchedule::new(4, 0.5, 10, 10, None, 0).is_err());
        assert!(CrashSchedule::new(4, 0.5, 0, 10, Some(0), 0).is_err());
    }

    #[test]
    fn jammer_targets_densest_neighborhood_within_budget() {
        // Star with center 0: leaf 1 transmits, so the center is the
        // only would-be receiver and leaf 1 the best (only) target.
        let g = crate::topology::star(5).unwrap();
        let mut j = AdversarialJammer::new(2);
        let tx = [1u32];
        let mut jammed = Vec::new();
        j.jam(
            0,
            &ChannelView {
                graph: &g,
                transmitters: &tx,
            },
            &mut jammed,
        );
        assert_eq!(jammed, vec![0], "leaf's only neighbor is the center");
        assert_eq!(j.remaining(), 1);
        // No transmitters: no budget spent.
        jammed.clear();
        j.jam(
            1,
            &ChannelView {
                graph: &g,
                transmitters: &[],
            },
            &mut jammed,
        );
        assert!(jammed.is_empty());
        assert_eq!(j.remaining(), 1);
        // Budget exhausts.
        jammed.clear();
        j.jam(
            2,
            &ChannelView {
                graph: &g,
                transmitters: &tx,
            },
            &mut jammed,
        );
        assert_eq!(j.remaining(), 0);
        jammed.clear();
        j.jam(
            3,
            &ChannelView {
                graph: &g,
                transmitters: &tx,
            },
            &mut jammed,
        );
        assert!(jammed.is_empty(), "no budget left");
    }

    #[test]
    fn jammer_spends_nothing_on_all_collided_rounds() {
        // Star center 0; two leaves transmit → the center is collided
        // anyway, no reception to disrupt, budget kept.
        let g = crate::topology::star(4).unwrap();
        let mut j = AdversarialJammer::new(1);
        let mut jammed = Vec::new();
        j.jam(
            0,
            &ChannelView {
                graph: &g,
                transmitters: &[1, 2],
            },
            &mut jammed,
        );
        assert!(jammed.is_empty());
        assert_eq!(j.remaining(), 1);
    }

    #[test]
    fn wakeup_corrupt_validates_and_is_deterministic() {
        assert!(WakeupCorrupt::new(f64::NAN, 0).is_err());
        assert!(WakeupCorrupt::new(1.5, 0).is_err());
        let mut a = WakeupCorrupt::new(0.5, 3).unwrap();
        let mut b = WakeupCorrupt::new(0.5, 3).unwrap();
        let da: Vec<bool> = (0..32).map(|r| a.corrupt_wakeup(r, 0)).collect();
        let db: Vec<bool> = (0..32).map(|r| b.corrupt_wakeup(r, 0)).collect();
        assert_eq!(da, db);
        let mut always = WakeupCorrupt::new(1.0, 3).unwrap();
        assert!((0..8).all(|r| always.corrupt_wakeup(r, 0)));
    }

    #[test]
    fn stacked_consults_both_models_without_short_circuit() {
        // Two uniform-loss models with the same seed: identical draw
        // sequences, so their ORed pattern equals either alone — which
        // only holds if both streams advance on every call.
        let a = UniformLoss::new(0.5, 11).unwrap();
        let b = UniformLoss::new(0.5, 11).unwrap();
        let mut solo = UniformLoss::new(0.5, 11).unwrap();
        let mut stacked = Stacked(a, b);
        for r in 0..64 {
            assert_eq!(stacked.drop_delivery(r, 0, 1), solo.sample());
        }
        assert!(Stacked::<NoFaults, NoFaults>::ENABLED == false);
        assert!(Stacked::<NoFaults, UniformLoss>::ENABLED);
    }

    #[test]
    fn spec_parses_round_trips_and_builds() {
        let cases = [
            "none",
            "uniform:rate=0.1",
            "ge:p_bad=0.01,p_good=0.1,loss_good=0,loss_bad=0.9",
            "crash:frac=0.25,from=0,until=4000,down=2000",
            "crash:frac=0.5,from=10,until=20",
            "jam:budget=500",
            "wakeup:rate=0.5",
            "uniform:rate=0.05+jam:budget=10",
        ];
        for s in cases {
            let spec: FaultSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            let back: FaultSpec = spec.label().parse().unwrap();
            assert_eq!(spec, back, "{s} must round-trip");
            spec.build(16, 0).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn spec_shorthands() {
        assert_eq!(
            "uniform:0.1".parse::<FaultSpec>().unwrap(),
            FaultSpec::Uniform { rate: 0.1 }
        );
        assert_eq!(
            "jam:500".parse::<FaultSpec>().unwrap(),
            FaultSpec::Jam { budget: 500 }
        );
        assert_eq!(
            "crash:0.5".parse::<FaultSpec>().unwrap(),
            FaultSpec::Crash {
                fraction: 0.5,
                from: 0,
                until: u64::MAX,
                downtime: None
            }
        );
    }

    #[test]
    fn spec_rejects_garbage() {
        for bad in [
            "",
            "flood:everything",
            "uniform",
            "uniform:rate=lots",
            "ge:p_bad=0.1",
            "jam:budget=-3",
        ] {
            assert!(bad.parse::<FaultSpec>().is_err(), "{bad:?} must not parse");
        }
        // Parses but fails validation at build time.
        let spec: FaultSpec = "uniform:rate=1.5".parse().unwrap();
        assert!(spec.build(8, 0).is_err());
    }

    #[test]
    fn spec_is_none_sees_through_stacks() {
        assert!(FaultSpec::None.is_none());
        assert!(FaultSpec::Stack(vec![FaultSpec::None, FaultSpec::None]).is_none());
        assert!(!FaultSpec::Uniform { rate: 0.1 }.is_none());
    }

    #[test]
    fn built_faults_delegate() {
        let spec: FaultSpec = "crash:frac=1.0,from=0,until=1".parse().unwrap();
        let mut built = spec.build(3, 0).unwrap();
        let mut ev = FaultEvents::default();
        built.begin_round(0, &mut ev);
        assert_eq!(ev.crashes, 3);
        assert!(built.is_crashed(0) && built.is_crashed(2));
        assert!(!built.drop_delivery(0, 0, 1));
    }

    #[test]
    fn sojourn_edge_cases() {
        let mut rng = rng::stream(0, 0);
        assert_eq!(sojourn(&mut rng, 0.0), u64::MAX);
        assert_eq!(sojourn(&mut rng, 1.0), 1);
        for _ in 0..100 {
            assert!(sojourn(&mut rng, 0.5) >= 1);
        }
    }
}
