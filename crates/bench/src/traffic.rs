//! Arrival-schedule generators for the streaming experiments (E19):
//! deterministic workloads parameterized by an offered load λ (packets
//! per round, network-wide), plus the λ-sweep specification the
//! saturation experiment consumes.
//!
//! Every generated schedule starts with a fixed *seed packet* at round
//! 0 on node 0 — the protocol requires at least one round-0 arrival to
//! wake the network and elect the leader — and is fully determined by
//! `(spec, n, seed)`.

use kbcast::dynamic::Arrival;
use radio_net::error::Error;
use radio_net::rng;
use rand::Rng;

/// Salt for the traffic-generation RNG stream, disjoint from node
/// streams (those are salted with node ids `< 2^32`).
const TRAFFIC_SALT: u64 = 0x7452_4146_4649_4331; // "TRAFFIC1"

/// The shape of the offered load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrafficPattern {
    /// Memoryless arrivals: each round the number of new packets is
    /// Poisson(λ), each landing on a uniformly random node.
    Poisson {
        /// Offered load in packets per round (network-wide).
        lambda: f64,
    },
    /// On/off bursts: alternating `on_rounds` of Poisson(λ) arrivals
    /// and `off_rounds` of silence. Mean load is
    /// `λ · on/(on+off)` — same machinery, bursty queueing.
    Bursty {
        /// Offered load during the on-phase, packets per round.
        lambda: f64,
        /// Length of each on-phase in rounds.
        on_rounds: u64,
        /// Length of each off-phase in rounds.
        off_rounds: u64,
    },
    /// Adversarial single-hotspot: Poisson(λ) arrivals all landing on
    /// one node, so its collection subtree carries the entire load.
    Hotspot {
        /// Offered load in packets per round.
        lambda: f64,
        /// The node every packet arrives at.
        node: usize,
    },
}

impl TrafficPattern {
    fn lambda(&self) -> f64 {
        match *self {
            TrafficPattern::Poisson { lambda }
            | TrafficPattern::Bursty { lambda, .. }
            | TrafficPattern::Hotspot { lambda, .. } => lambda,
        }
    }
}

/// A complete workload description: a [`TrafficPattern`] applied over a
/// generation window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficSpec {
    /// The load shape.
    pub pattern: TrafficPattern,
    /// Rounds `1..=window` during which arrivals are generated (the
    /// round-0 seed packet is always added on top).
    pub window: u64,
}

impl TrafficSpec {
    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when the arrival rate is non-finite
    /// or negative, the generation window is zero-length, or a burst
    /// phase is zero-length.
    pub fn validate(&self) -> Result<(), Error> {
        let lambda = self.pattern.lambda();
        if !lambda.is_finite() {
            return Err(Error::InvalidParameter {
                reason: format!("arrival rate must be finite, got {lambda}"),
            });
        }
        if lambda < 0.0 {
            return Err(Error::InvalidParameter {
                reason: format!("arrival rate must be nonnegative, got {lambda}"),
            });
        }
        if self.window == 0 {
            return Err(Error::InvalidParameter {
                reason: "traffic generation window must be at least 1 round".into(),
            });
        }
        if let TrafficPattern::Bursty {
            on_rounds,
            off_rounds,
            ..
        } = self.pattern
        {
            if on_rounds == 0 || off_rounds == 0 {
                return Err(Error::InvalidParameter {
                    reason: format!(
                        "burst phases must be at least 1 round (on {on_rounds}, off {off_rounds})"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Generates the arrival schedule for an `n`-node network,
    /// deterministic in `(self, n, seed)`.
    ///
    /// # Errors
    ///
    /// Everything [`TrafficSpec::validate`] rejects, plus a hotspot
    /// node outside `0..n`.
    pub fn generate(&self, n: usize, seed: u64) -> Result<Vec<Arrival>, Error> {
        self.validate()?;
        if n == 0 {
            return Err(Error::InvalidParameter {
                reason: "traffic needs at least one node".into(),
            });
        }
        if let TrafficPattern::Hotspot { node, .. } = self.pattern {
            if node >= n {
                return Err(Error::InvalidParameter {
                    reason: format!("hotspot node {node} outside 0..{n}"),
                });
            }
        }
        let mut rng = rng::stream(seed, TRAFFIC_SALT);
        let mut out = vec![Arrival {
            round: 0,
            node: 0,
            payload: vec![0xE1, 0x95],
        }];
        for round in 1..=self.window {
            let lambda = match self.pattern {
                TrafficPattern::Poisson { lambda } | TrafficPattern::Hotspot { lambda, .. } => {
                    lambda
                }
                TrafficPattern::Bursty {
                    lambda,
                    on_rounds,
                    off_rounds,
                } => {
                    if (round - 1) % (on_rounds + off_rounds) < on_rounds {
                        lambda
                    } else {
                        0.0
                    }
                }
            };
            for i in 0..poisson(&mut rng, lambda) {
                let node = match self.pattern {
                    TrafficPattern::Hotspot { node, .. } => node,
                    _ => rng.gen_range(0..n),
                };
                out.push(Arrival {
                    round,
                    node,
                    payload: vec![
                        (round >> 8) as u8,
                        round as u8,
                        u8::try_from(i % 251).unwrap_or(0),
                    ],
                });
            }
        }
        Ok(out)
    }
}

/// One Poisson(λ) draw via Knuth's product method, chunked so the
/// `exp(-λ)` threshold never underflows (Poisson(a+b) = Poisson(a) +
/// Poisson(b) for independent draws).
fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u64 {
    let mut remaining = lambda;
    let mut count = 0u64;
    while remaining > 0.0 {
        let chunk = remaining.min(16.0);
        remaining -= chunk;
        let threshold = (-chunk).exp();
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= threshold {
                break;
            }
            count += 1;
        }
    }
    count
}

/// The λ-sweep specification for the saturation experiment: each λ is
/// run as a [`TrafficSpec`] over the same window, inside a session
/// bounded by `horizon` rounds.
#[derive(Clone, Debug, PartialEq)]
pub struct SaturationSpec {
    /// Offered loads to sweep, packets per round.
    pub lambdas: Vec<f64>,
    /// Arrival-generation window per run, in rounds.
    pub window: u64,
    /// Session round budget per run (must leave the protocol room to
    /// drain: `horizon > window`).
    pub horizon: u64,
}

impl SaturationSpec {
    /// Validates the sweep.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when the sweep is empty, any rate is
    /// non-finite or negative, or an epoch/round budget is zero-length
    /// (or leaves no room to drain).
    pub fn validate(&self) -> Result<(), Error> {
        if self.lambdas.is_empty() {
            return Err(Error::InvalidParameter {
                reason: "saturation sweep needs at least one arrival rate".into(),
            });
        }
        for &lambda in &self.lambdas {
            if !lambda.is_finite() || lambda < 0.0 {
                return Err(Error::InvalidParameter {
                    reason: format!("arrival rates must be finite and nonnegative, got {lambda}"),
                });
            }
        }
        if self.window == 0 {
            return Err(Error::InvalidParameter {
                reason: "saturation window must be at least 1 round".into(),
            });
        }
        if self.horizon <= self.window {
            return Err(Error::InvalidParameter {
                reason: format!(
                    "session horizon ({}) must exceed the arrival window ({}) so queues can drain",
                    self.horizon, self.window
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let spec = TrafficSpec {
            pattern: TrafficPattern::Poisson { lambda: 0.01 },
            window: 5_000,
        };
        let a = spec.generate(16, 42).unwrap();
        let b = spec.generate(16, 42).unwrap();
        assert_eq!(a, b);
        let c = spec.generate(16, 43).unwrap();
        assert_ne!(a, c, "different seeds must differ somewhere");
        assert!(a.len() > 1, "λ·window = 50 expected arrivals");
    }

    #[test]
    fn every_schedule_has_a_round_zero_seed() {
        for pattern in [
            TrafficPattern::Poisson { lambda: 0.0 },
            TrafficPattern::Bursty {
                lambda: 0.02,
                on_rounds: 100,
                off_rounds: 400,
            },
            TrafficPattern::Hotspot {
                lambda: 0.01,
                node: 3,
            },
        ] {
            let arrivals = TrafficSpec {
                pattern,
                window: 1_000,
            }
            .generate(8, 7)
            .unwrap();
            assert!(arrivals.iter().any(|a| a.round == 0), "{pattern:?}");
        }
    }

    #[test]
    fn bursty_respects_off_phases() {
        let spec = TrafficSpec {
            pattern: TrafficPattern::Bursty {
                lambda: 0.5,
                on_rounds: 10,
                off_rounds: 90,
            },
            window: 10_000,
        };
        let arrivals = spec.generate(8, 9).unwrap();
        for a in arrivals.iter().filter(|a| a.round > 0) {
            assert!(
                (a.round - 1) % 100 < 10,
                "arrival at round {} falls in an off-phase",
                a.round
            );
        }
    }

    #[test]
    fn hotspot_targets_one_node() {
        let spec = TrafficSpec {
            pattern: TrafficPattern::Hotspot {
                lambda: 0.05,
                node: 5,
            },
            window: 2_000,
        };
        let arrivals = spec.generate(8, 11).unwrap();
        assert!(arrivals.iter().skip(1).all(|a| a.node == 5));
        assert!(arrivals.len() > 1);
    }

    #[test]
    fn rejects_invalid_rates_and_windows() {
        use radio_net::error::Error;
        let bad = |pattern, window| {
            let r = TrafficSpec { pattern, window }.validate();
            assert!(matches!(r, Err(Error::InvalidParameter { .. })), "{r:?}");
        };
        bad(
            TrafficPattern::Poisson {
                lambda: f64::INFINITY,
            },
            100,
        );
        bad(TrafficPattern::Poisson { lambda: f64::NAN }, 100);
        bad(TrafficPattern::Poisson { lambda: -0.5 }, 100);
        bad(TrafficPattern::Poisson { lambda: 0.1 }, 0);
        bad(
            TrafficPattern::Bursty {
                lambda: 0.1,
                on_rounds: 0,
                off_rounds: 5,
            },
            100,
        );
        let oob = TrafficSpec {
            pattern: TrafficPattern::Hotspot {
                lambda: 0.1,
                node: 8,
            },
            window: 100,
        }
        .generate(8, 0);
        assert!(
            matches!(oob, Err(Error::InvalidParameter { .. })),
            "{oob:?}"
        );
    }

    #[test]
    fn saturation_spec_validation() {
        use radio_net::error::Error;
        let ok = SaturationSpec {
            lambdas: vec![0.001, 0.01],
            window: 10_000,
            horizon: 100_000,
        };
        assert!(ok.validate().is_ok());
        let bad = |spec: SaturationSpec| {
            let r = spec.validate();
            assert!(matches!(r, Err(Error::InvalidParameter { .. })), "{r:?}");
        };
        bad(SaturationSpec {
            lambdas: vec![],
            window: 10,
            horizon: 100,
        });
        bad(SaturationSpec {
            lambdas: vec![-1.0],
            window: 10,
            horizon: 100,
        });
        bad(SaturationSpec {
            lambdas: vec![f64::NAN],
            window: 10,
            horizon: 100,
        });
        bad(SaturationSpec {
            lambdas: vec![0.01],
            window: 0,
            horizon: 100,
        });
        bad(SaturationSpec {
            lambdas: vec![0.01],
            window: 100,
            horizon: 100,
        });
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = rng::stream(1, 2);
        let trials = 4_000;
        let total: u64 = (0..trials).map(|_| poisson(&mut rng, 3.0)).sum();
        #[allow(clippy::cast_precision_loss)]
        let mean = total as f64 / f64::from(trials);
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
        // The chunked path (λ > 16) must stay sane too.
        let total: u64 = (0..trials).map(|_| poisson(&mut rng, 40.0)).sum();
        #[allow(clippy::cast_precision_loss)]
        let mean = total as f64 / f64::from(trials);
        assert!((mean - 40.0).abs() < 1.0, "mean {mean}");
    }
}
