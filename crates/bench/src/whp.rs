//! Statistical "with high probability" checker: turns E13's eyeballed
//! success-rate table into an assertion.
//!
//! The paper's headline theorem says the protocol completes within
//! `O(k·logΔ + (D + log n)·log n·logΔ)` rounds w.h.p. This module
//! checks that claim empirically, in two steps:
//!
//! 1. **Calibrate** — [`calibrate_c`] fits the hidden constant from a
//!    probe sweep: the maximum observed `rounds / bound_units` ratio
//!    (times a safety margin supplied by the caller).
//! 2. **Assert** — [`check_sweep`] sweeps many more seeds, counts a
//!    seed as good iff the session succeeded *and* finished within
//!    `C · bound_units`, and computes an exact one-sided
//!    [Clopper–Pearson](https://en.wikipedia.org/wiki/Binomial_proportion_confidence_interval)
//!    lower confidence bound on the per-seed success probability. If
//!    that lower bound misses the target, the check fails loudly with
//!    the offending seeds ([`WhpFailure`]) instead of printing a table.
//!
//! The Clopper–Pearson bound is exact (inverts the binomial tail, no
//! normal approximation), so it stays honest at the `0/200 failures`
//! boundary where Wald intervals collapse to `[1, 1]`.

use kbcast::session::{NetParams, SessionReport};

/// Theoretical bound shape of one configuration, in "units": the
/// bracketed part of `O(k·logΔ + (D + log n)·log n·logΔ)` with every
/// logarithm floored at 1 (so degenerate topologies — stars, paths of
/// two — don't zero a term the constant then can't recover).
#[must_use]
pub fn bound_units(net: &NetParams, k: usize) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    let log = |x: usize| (x.max(2) as f64).log2().max(1.0);
    let log_n = log(net.n);
    let log_delta = log(net.max_degree);
    #[allow(clippy::cast_precision_loss)]
    let (k, d) = (k as f64, net.diameter.max(1) as f64);
    k * log_delta + (d + log_n) * log_n * log_delta
}

/// Fits the bound's hidden constant from a probe sweep: the maximum
/// `rounds_total / units` over the successful reports, times `margin`.
/// Returns 0 if nothing succeeded (which [`check_sweep`] then reports
/// as every seed failing — a dead protocol never calibrates itself
/// into a pass).
#[must_use]
pub fn calibrate_c<M>(probes: &[(NetParams, usize, &SessionReport<M>)], margin: f64) -> f64 {
    let mut c = 0.0f64;
    for (net, k, report) in probes {
        if !report.success {
            continue;
        }
        #[allow(clippy::cast_precision_loss)]
        let ratio = report.rounds_total as f64 / bound_units(net, *k);
        c = c.max(ratio);
    }
    c * margin
}

/// One seed that broke the bound (or the run outright).
#[derive(Clone, Debug, PartialEq)]
pub struct SeedFailure {
    /// The sweep seed (reports are in seed order, so this is the
    /// report's index).
    pub seed: u64,
    /// What went wrong, human-readable.
    pub reason: String,
}

/// Aggregate outcome of a w.h.p. check over one sweep.
#[derive(Clone, Debug)]
pub struct WhpReport {
    /// Seeds swept.
    pub trials: u64,
    /// Seeds that succeeded within the bound.
    pub good: u64,
    /// Exact one-sided lower confidence bound on the per-seed success
    /// probability.
    pub lower_bound: f64,
    /// Confidence level the bound was computed at.
    pub confidence: f64,
    /// Largest observed `rounds / (C · units)` ratio among successful
    /// runs — how much headroom the constant has (1.0 = none).
    pub worst_ratio: f64,
}

/// A failed w.h.p. check: the lower confidence bound missed the target.
/// Carries the offending seeds so the failure is reproducible.
#[derive(Clone, Debug)]
pub struct WhpFailure {
    /// The aggregate numbers at the point of failure.
    pub report: WhpReport,
    /// Target the lower bound had to reach.
    pub target: f64,
    /// Every seed that failed (session failure or bound violation).
    pub failures: Vec<SeedFailure>,
}

impl std::fmt::Display for WhpFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "w.h.p. check failed: {}/{} seeds good, lower bound {:.4} < target {:.4} \
             at {:.0}% confidence",
            self.report.good,
            self.report.trials,
            self.report.lower_bound,
            self.target,
            self.report.confidence * 100.0
        )?;
        for fail in self.failures.iter().take(8) {
            writeln!(f, "  seed {}: {}", fail.seed, fail.reason)?;
        }
        if self.failures.len() > 8 {
            writeln!(f, "  ... and {} more", self.failures.len() - 8)?;
        }
        Ok(())
    }
}

/// Checks one sweep's reports (in seed order) against the calibrated
/// bound `c · bound_units(net, k)`.
///
/// A seed is *good* iff its session succeeded and finished within the
/// bound. Passes iff the Clopper–Pearson lower bound on the good
/// probability reaches `target` at `confidence`.
///
/// # Errors
///
/// Returns [`WhpFailure`] — listing every offending seed — when the
/// lower confidence bound misses `target`.
pub fn check_sweep<M>(
    reports: &[SessionReport<M>],
    net: &NetParams,
    k: usize,
    c: f64,
    confidence: f64,
    target: f64,
) -> Result<WhpReport, WhpFailure> {
    let cap = c * bound_units(net, k);
    let mut failures = Vec::new();
    let mut worst_ratio = 0.0f64;
    for (i, r) in reports.iter().enumerate() {
        let seed = i as u64;
        if !r.success {
            failures.push(SeedFailure {
                seed,
                reason: format!(
                    "session failed outright after {} rounds \
                     (delivered fraction {:.3})",
                    r.rounds_total, r.delivered_fraction
                ),
            });
            continue;
        }
        #[allow(clippy::cast_precision_loss)]
        let rounds = r.rounds_total as f64;
        if rounds > cap {
            failures.push(SeedFailure {
                seed,
                reason: format!(
                    "{} rounds exceeds the calibrated bound {:.0} \
                     (C = {c:.2})",
                    r.rounds_total, cap
                ),
            });
        } else {
            worst_ratio = worst_ratio.max(rounds / cap);
        }
    }
    let trials = reports.len() as u64;
    let good = trials - failures.len() as u64;
    let report = WhpReport {
        trials,
        good,
        lower_bound: clopper_pearson_lower(good, trials, confidence),
        confidence,
        worst_ratio,
    };
    if report.lower_bound < target {
        Err(WhpFailure {
            report,
            target,
            failures,
        })
    } else {
        Ok(report)
    }
}

/// Exact one-sided Clopper–Pearson lower confidence bound on a binomial
/// proportion: the largest `p` with
/// `P(X ≥ successes | trials, p) ≤ 1 - confidence`.
///
/// `successes == 0` gives 0; `successes == trials` gives the closed
/// form `α^(1/n)`. Inverts the exact binomial tail by bisection in
/// log-space, so it is numerically stable out to thousands of trials.
///
/// # Panics
///
/// Panics if `successes > trials`, `trials == 0`, or `confidence` is
/// outside `(0, 1)`.
#[must_use]
pub fn clopper_pearson_lower(successes: u64, trials: u64, confidence: f64) -> f64 {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "successes exceed trials");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    if successes == 0 {
        return 0.0;
    }
    let alpha = 1.0 - confidence;
    let ln_alpha = alpha.ln();
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if ln_binomial_tail(trials, successes, mid) > ln_alpha {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-12 {
            break;
        }
    }
    lo
}

/// `ln P(X ≥ s)` for `X ~ Binomial(n, p)`, via log-sum-exp over the
/// exact terms.
fn ln_binomial_tail(n: u64, s: u64, p: f64) -> f64 {
    if s == 0 {
        return 0.0;
    }
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return 0.0;
    }
    let ln_p = p.ln();
    let ln_q = (-p).ln_1p();
    let lnf = LnFactorials::up_to(n);
    // Accumulate relative to the running maximum term.
    let mut max_term = f64::NEG_INFINITY;
    let mut terms = Vec::with_capacity((n - s + 1) as usize);
    for i in s..=n {
        #[allow(clippy::cast_precision_loss)]
        let term = lnf.ln_choose(n, i) + i as f64 * ln_p + (n - i) as f64 * ln_q;
        max_term = max_term.max(term);
        terms.push(term);
    }
    let sum: f64 = terms.iter().map(|t| (t - max_term).exp()).sum();
    (max_term + sum.ln()).min(0.0)
}

/// Table of `ln(i!)` for `i ≤ n`.
struct LnFactorials(Vec<f64>);

impl LnFactorials {
    fn up_to(n: u64) -> Self {
        let mut t = Vec::with_capacity((n + 1) as usize);
        t.push(0.0);
        for i in 1..=n {
            #[allow(clippy::cast_precision_loss)]
            let ln_i = (i as f64).ln();
            t.push(t[(i - 1) as usize] + ln_i);
        }
        LnFactorials(t)
    }

    fn ln_choose(&self, n: u64, k: u64) -> f64 {
        self.0[n as usize] - self.0[k as usize] - self.0[(n - k) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_net::stats::SimStats;

    fn report(success: bool, rounds: u64) -> SessionReport<()> {
        SessionReport {
            n: 16,
            k: 8,
            diameter: 4,
            max_degree: 4,
            success,
            rounds_total: rounds,
            delivered_fraction: if success { 1.0 } else { 0.5 },
            stats: SimStats::new(),
            meta: (),
            trace: None,
        }
    }

    fn net() -> NetParams {
        NetParams {
            n: 16,
            diameter: 4,
            max_degree: 4,
        }
    }

    #[test]
    fn clopper_pearson_degenerate_cases() {
        assert_eq!(clopper_pearson_lower(0, 200, 0.95), 0.0);
        // All-successes closed form: α^(1/n).
        let p = clopper_pearson_lower(200, 200, 0.95);
        let expect = 0.05f64.powf(1.0 / 200.0);
        assert!((p - expect).abs() < 1e-9, "{p} vs {expect}");
        // 200/200 at 95% clears 0.985 — the E13 acceptance threshold.
        assert!(p > 0.985);
    }

    #[test]
    fn clopper_pearson_monotone_in_successes() {
        let mut prev = -1.0;
        for s in [0, 50, 100, 150, 190, 199, 200] {
            let p = clopper_pearson_lower(s, 200, 0.95);
            assert!(p > prev || (s == 0 && p == 0.0), "s={s}: {p} <= {prev}");
            prev = p;
        }
    }

    #[test]
    fn clopper_pearson_against_known_value() {
        // 190/200 at 95% one-sided: lower bound ≈ 0.9168 (standard
        // tables give 0.9168 for the exact one-sided interval).
        let p = clopper_pearson_lower(190, 200, 0.95);
        assert!((p - 0.9168).abs() < 5e-4, "{p}");
    }

    #[test]
    fn bound_units_floors_degenerate_logs() {
        // A two-node path: every log term floors at 1, so the bound is
        // k + (D + 1) rather than 0.
        let tiny = NetParams {
            n: 2,
            diameter: 1,
            max_degree: 1,
        };
        assert!(bound_units(&tiny, 4) >= 4.0 + 2.0);
        // Units grow with each parameter.
        let base = bound_units(&net(), 8);
        assert!(bound_units(&net(), 16) > base);
        let wider = NetParams {
            max_degree: 8,
            ..net()
        };
        assert!(bound_units(&wider, 8) > base);
    }

    #[test]
    fn calibrate_then_check_passes_clean_sweep() {
        let probe: Vec<SessionReport<()>> = (0..10).map(|i| report(true, 100 + i)).collect();
        let probes: Vec<_> = probe.iter().map(|r| (net(), 8, r)).collect();
        let c = calibrate_c(&probes, 1.5);
        assert!(c > 0.0);
        let sweep: Vec<SessionReport<()>> = (0..200).map(|i| report(true, 90 + i % 20)).collect();
        let out = check_sweep(&sweep, &net(), 8, c, 0.95, 0.985).expect("sweep within bound");
        assert_eq!(out.good, 200);
        assert!(out.lower_bound > 0.985);
        assert!(out.worst_ratio <= 1.0);
    }

    #[test]
    fn check_sweep_names_the_offending_seed() {
        let mut sweep: Vec<SessionReport<()>> = (0..50).map(|_| report(true, 100)).collect();
        sweep[17] = report(false, 5000);
        sweep[31] = report(true, 1_000_000); // succeeded, but way over bound
        let err = check_sweep(&sweep, &net(), 8, 2.0, 0.95, 0.985)
            .expect_err("two bad seeds out of 50 cannot clear 0.985");
        assert_eq!(err.failures.len(), 2);
        assert_eq!(err.failures[0].seed, 17);
        assert!(err.failures[0].reason.contains("failed outright"));
        assert_eq!(err.failures[1].seed, 31);
        assert!(err.failures[1]
            .reason
            .contains("exceeds the calibrated bound"));
        let shown = err.to_string();
        assert!(shown.contains("seed 17"), "{shown}");
    }

    #[test]
    fn dead_protocol_never_calibrates_into_a_pass() {
        let probe: Vec<SessionReport<()>> = (0..5).map(|_| report(false, 0)).collect();
        let probes: Vec<_> = probe.iter().map(|r| (net(), 8, r)).collect();
        assert_eq!(calibrate_c(&probes, 1.5), 0.0);
    }
}
