//! Deterministic parallel map over seed indices.
//!
//! Every experiment repeats an independent simulation per seed, so the
//! sweep is embarrassingly parallel. Workers pull indices from a shared
//! atomic counter and return `(index, value)` pairs; the results are
//! sorted back into index order before aggregation, so medians and
//! every other aggregate are **bit-identical** to a sequential run
//! regardless of thread count or scheduling. Built on
//! `std::thread::scope` only — no third-party thread-pool dependency.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Parses a `KBCAST_THREADS`-style override. Returns `None` for unset,
/// empty, unparsable or zero values (fall back to auto-detection).
fn threads_from(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Number of worker threads: the `KBCAST_THREADS` environment variable
/// if set to a positive integer, else
/// [`std::thread::available_parallelism`].
#[must_use]
pub fn thread_count() -> usize {
    threads_from(std::env::var("KBCAST_THREADS").ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// Applies `f` to every index in `0..len` across `threads` workers and
/// returns the results in index order. `f(i)` must depend only on `i`
/// (each simulation derives all randomness from its seed), which makes
/// the output independent of the thread count.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map_indexed_with<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, len.max(1));
    if threads == 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut pairs: Vec<(usize, T)> = Vec::with_capacity(len);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            pairs.extend(h.join().expect("sweep worker panicked"));
        }
    });
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// [`par_map_indexed_with`] using [`thread_count`] workers.
pub fn par_map_indexed<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed_with(thread_count(), len, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_parsing() {
        assert_eq!(threads_from(Some("1")), Some(1));
        assert_eq!(threads_from(Some(" 8 ")), Some(8));
        assert_eq!(threads_from(Some("0")), None);
        assert_eq!(threads_from(Some("lots")), None);
        assert_eq!(threads_from(None), None);
    }

    #[test]
    fn kbcast_threads_env_respected() {
        // Process-global, but other tests only read it — and the whole
        // design guarantees thread count never changes results.
        std::env::set_var("KBCAST_THREADS", "1");
        assert_eq!(thread_count(), 1);
        std::env::remove_var("KBCAST_THREADS");
        assert!(thread_count() >= 1);
    }

    #[test]
    fn results_in_index_order_any_thread_count() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(par_map_indexed_with(threads, 97, |i| i * i), expect);
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map_indexed_with(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed_with(4, 1, |i| i + 1), vec![1]);
    }
}
