//! Isolated micro-simulations of single sub-routines, for the
//! experiments that reproduce per-lemma claims (E7: `FORWARD`/Lemma 6,
//! E8: `OSPG`/Lemma 4) without the surrounding stages.

use std::collections::{BTreeMap, HashSet};

use gf2::bitvec::BitVec;
use gf2::decoder::Decoder;
use kbcast::messages::HEADER_BITS;
use protocols::decay::Decay;
use radio_net::engine::{Engine, Node};
use radio_net::graph::{Graph, NodeId};
use radio_net::message::MessageSize;
use radio_net::rng;
use radio_net::topology::Topology;
use rand::rngs::SmallRng;
use rand::Rng;

// ---------------------------------------------------------------------
// OSPG in isolation (experiment E8).
// ---------------------------------------------------------------------

/// One packet step of the isolated `OSPG` unicast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpMsg {
    /// Packet identity.
    pub pkt: u64,
    /// Addressee (the transmitter's parent).
    pub to: u64,
}

impl MessageSize for UpMsg {
    fn size_bits(&self) -> usize {
        HEADER_BITS + 128
    }
}

#[derive(Debug)]
struct OspgNode {
    my_id: u64,
    parent: Option<u64>,
    is_root: bool,
    launches: BTreeMap<u64, u64>,
    relay: Option<UpMsg>,
    received: HashSet<u64>,
}

impl Node for OspgNode {
    type Msg = UpMsg;
    fn poll(&mut self, round: u64) -> Option<UpMsg> {
        if let Some(m) = self.relay.take() {
            return Some(m);
        }
        let pkt = self.launches.remove(&round)?;
        let to = self.parent?;
        Some(UpMsg { pkt, to })
    }
    fn receive(&mut self, _round: u64, msg: &UpMsg) {
        if msg.to != self.my_id {
            return;
        }
        if self.is_root {
            self.received.insert(msg.pkt);
        } else if let Some(parent) = self.parent {
            self.relay = Some(UpMsg {
                pkt: msg.pkt,
                to: parent,
            });
        }
    }
}

/// Outcome of one isolated `OSPG(y)` execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OspgOutcome {
    /// Packets that existed.
    pub packets: usize,
    /// Distinct packets that reached the root.
    pub delivered: usize,
}

impl OspgOutcome {
    /// Delivered fraction.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.delivered as f64 / self.packets.max(1) as f64
        }
    }
}

/// Runs a single `OSPG(y)` (upward half only — no acks, as in the
/// paper's Lemma 4 argument) on `topology` rooted at `root`, with
/// `packets_at[i]` packets at node `i`. Each packet draws one launch
/// slot in `[1, 6y]`; the run lasts `6y + D` rounds.
///
/// # Panics
///
/// Panics if the topology fails to build or is disconnected.
#[must_use]
pub fn ospg_once(
    topology: &Topology,
    root: usize,
    packets_at: &[usize],
    y: usize,
    seed: u64,
) -> OspgOutcome {
    let g = topology.build(seed).expect("topology builds");
    let n = g.len();
    assert_eq!(packets_at.len(), n);
    let d = g.diameter().expect("connected topology");
    let dist = g.bfs_distances(NodeId::new(root));
    let parent_of = |i: usize| -> Option<u64> {
        if i == root {
            return None;
        }
        let di = dist[i].expect("connected");
        g.neighbors(NodeId::new(i))
            .iter()
            .find(|&&p| dist[p.index()] == Some(di - 1))
            .map(|p| p.index() as u64)
    };
    let mut packets = 0u64;
    let nodes: Vec<OspgNode> = (0..n)
        .map(|i| {
            let mut launches = BTreeMap::new();
            let mut r = rng::stream(seed, i as u64);
            for _ in 0..packets_at[i] {
                let pkt = packets;
                packets += 1;
                if i != root {
                    let slot = r.gen_range(1..=(6 * y) as u64);
                    launches.entry(slot).or_insert(pkt);
                }
            }
            OspgNode {
                my_id: i as u64,
                parent: parent_of(i),
                is_root: i == root,
                launches,
                relay: None,
                received: HashSet::new(),
            }
        })
        .collect();
    let mut e = Engine::new(g, nodes, (0..n).map(NodeId::new)).expect("engine");
    e.run((6 * y + d + 1) as u64);
    let delivered = e.node(NodeId::new(root)).received.len();
    OspgOutcome {
        packets: usize::try_from(packets).expect("fits"),
        delivered,
    }
}

// ---------------------------------------------------------------------
// FORWARD in isolation (experiment E7).
// ---------------------------------------------------------------------

/// A coded row in the isolated `FORWARD` micro-benchmark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowMsg {
    /// Selection vector.
    pub coeffs: BitVec,
    /// Combined payload.
    pub payload: Vec<u8>,
}

impl MessageSize for RowMsg {
    fn size_bits(&self) -> usize {
        HEADER_BITS + self.coeffs.len() + self.payload.len() * 8
    }
}

#[derive(Debug)]
enum FwdNode {
    Tx {
        group: Vec<Vec<u8>>,
        decay: Decay,
        rng: SmallRng,
    },
    Rx {
        decoder: Decoder,
        receptions: usize,
    },
}

impl Node for FwdNode {
    type Msg = RowMsg;
    fn poll(&mut self, round: u64) -> Option<RowMsg> {
        match self {
            FwdNode::Tx { group, decay, rng } => {
                if !decay.should_transmit(round, rng) {
                    return None;
                }
                let coeffs = BitVec::random_nonzero(group.len(), rng);
                let len = group.first().map_or(0, Vec::len);
                let mut payload = vec![0u8; len];
                for i in coeffs.iter_ones() {
                    for (a, b) in payload.iter_mut().zip(&group[i]) {
                        *a ^= b;
                    }
                }
                Some(RowMsg { coeffs, payload })
            }
            FwdNode::Rx { .. } => None,
        }
    }
    fn receive(&mut self, _round: u64, msg: &RowMsg) {
        if let FwdNode::Rx {
            decoder,
            receptions,
        } = self
        {
            *receptions += 1;
            if !decoder.is_complete() {
                decoder.insert(msg.coeffs.clone(), msg.payload.clone());
            }
        }
    }
}

/// Outcome of one isolated `FORWARD` execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForwardOutcome {
    /// Fraction of receivers that decoded the whole group.
    pub decoded_fraction: f64,
    /// Mean successful receptions per receiver.
    pub mean_receptions: f64,
}

/// Runs `FORWARD` in isolation on a complete bipartite layer:
/// `transmitters` nodes all holding the same `group_size`-packet group
/// transmit random nonzero combinations with the Decay schedule
/// (`delta_bound` sets the epoch length) for `epochs` epochs;
/// `receivers` nodes listen and decode.
#[must_use]
pub fn forward_once(
    transmitters: usize,
    receivers: usize,
    group_size: usize,
    payload_len: usize,
    epochs: usize,
    delta_bound: usize,
    seed: u64,
) -> ForwardOutcome {
    assert!(transmitters >= 1 && receivers >= 1 && group_size >= 1);
    let n = transmitters + receivers;
    let edges = (0..transmitters).flat_map(|t| (0..receivers).map(move |r| (t, transmitters + r)));
    let g = Graph::from_edges(n, edges).expect("bipartite layer builds");
    let mut wrng = rng::stream(seed, rng::salts::WORKLOAD);
    let group: Vec<Vec<u8>> = (0..group_size)
        .map(|_| (0..payload_len).map(|_| wrng.gen()).collect())
        .collect();
    let decay = Decay::new(delta_bound);
    let nodes: Vec<FwdNode> = (0..n)
        .map(|i| {
            if i < transmitters {
                FwdNode::Tx {
                    group: group.clone(),
                    decay,
                    rng: rng::stream(seed, i as u64),
                }
            } else {
                FwdNode::Rx {
                    decoder: Decoder::new(group_size, payload_len),
                    receptions: 0,
                }
            }
        })
        .collect();
    let mut e = Engine::new(g, nodes, (0..n).map(NodeId::new)).expect("engine");
    e.run((epochs * decay.epoch_len()) as u64);
    let mut decoded = 0usize;
    let mut receptions = 0usize;
    for i in transmitters..n {
        if let FwdNode::Rx {
            decoder,
            receptions: rx,
        } = e.node(NodeId::new(i))
        {
            if decoder.is_complete() {
                decoded += 1;
            }
            receptions += rx;
        }
    }
    #[allow(clippy::cast_precision_loss)]
    ForwardOutcome {
        decoded_fraction: decoded as f64 / receivers as f64,
        mean_receptions: receptions as f64 / receivers as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ospg_with_ample_slots_delivers_everything() {
        // One source far from the root, y >> k: a lone packet chain
        // cannot collide with itself.
        let mut packets = vec![0usize; 10];
        packets[9] = 1;
        let out = ospg_once(&Topology::Path { n: 10 }, 0, &packets, 8, 1);
        assert_eq!(out.delivered, 1);
    }

    #[test]
    fn ospg_overload_loses_packets() {
        // k far above 6y: most launches share slots and are dropped.
        let mut packets = vec![0usize; 6];
        packets[5] = 200;
        let out = ospg_once(&Topology::Path { n: 6 }, 0, &packets, 2, 3);
        assert!(out.delivered < out.packets);
        assert!(out.delivered <= 12); // at most 6y distinct slots
    }

    #[test]
    fn ospg_root_packets_do_not_travel() {
        let mut packets = vec![0usize; 4];
        packets[0] = 3; // at the root itself
        let out = ospg_once(&Topology::Path { n: 4 }, 0, &packets, 4, 0);
        assert_eq!(out.packets, 3);
        assert_eq!(out.delivered, 0); // they never traverse the channel
    }

    #[test]
    fn forward_with_enough_epochs_decodes() {
        let out = forward_once(4, 6, 8, 16, 60, 8, 1);
        assert!(
            out.decoded_fraction > 0.95,
            "fraction {}",
            out.decoded_fraction
        );
        assert!(out.mean_receptions >= 8.0);
    }

    #[test]
    fn forward_with_too_few_epochs_fails() {
        let out = forward_once(4, 6, 8, 16, 3, 8, 1);
        assert!(
            out.decoded_fraction < 0.5,
            "fraction {}",
            out.decoded_fraction
        );
    }

    #[test]
    fn forward_single_transmitter_works() {
        let out = forward_once(1, 3, 4, 8, 40, 4, 2);
        assert!((out.decoded_fraction - 1.0).abs() < 1e-9);
    }
}
