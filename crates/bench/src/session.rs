//! The shared protocol-sweep driver: every experiment binary repeats
//! "build the seed's topology, shape a workload, run a
//! [`BroadcastProtocol`] session" over a seed range. This module owns
//! that plumbing — seed fan-out across worker threads, per-seed graph
//! and workload construction, the session driver call — so an
//! experiment is reduced to picking a [`SweepSpec`] and aggregating the
//! returned [`SessionReport`]s.

use kbcast::runner::{RunOptions, Workload};
use kbcast::session::{
    run_protocol_on_graph, run_protocol_on_graph_with_faults, BroadcastProtocol, NetParams,
    SessionReport,
};
use radio_net::faults::FaultSpec;
use radio_net::topology::Topology;
use radio_net::trace::TraceSummary;

use crate::parallel::par_map_indexed;

/// How each seed's `k`-packet workload is placed on the nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// `k` packets at uniformly random (seeded) nodes — the default
    /// experiment family.
    Random,
    /// Packet `i` at node `i % n`.
    RoundRobin,
    /// All `k` packets at one node.
    SingleSource(usize),
}

impl WorkloadSpec {
    /// Materializes the workload for one seed.
    #[must_use]
    pub fn build(&self, n: usize, k: usize, seed: u64) -> Workload {
        match *self {
            WorkloadSpec::Random => Workload::random(n, k, seed),
            WorkloadSpec::RoundRobin => Workload::round_robin(n, k),
            WorkloadSpec::SingleSource(source) => Workload::single_source(n, source, k),
        }
    }
}

/// One protocol sweep: `seeds` independent sessions of a protocol on
/// per-seed builds of `topology` with `k`-packet workloads.
#[derive(Clone, Copy, Debug)]
pub struct SweepSpec<'a> {
    /// Topology family (rebuilt per seed).
    pub topology: &'a Topology,
    /// Packets per session.
    pub k: usize,
    /// Seeds `0..seeds`.
    pub seeds: u64,
    /// Workload placement.
    pub workload: WorkloadSpec,
    /// Harness knobs (noise injection, round-cap override).
    pub options: RunOptions,
    /// Fault injection (`None` = the clean, statically fault-free
    /// engine). Each seed builds its own model from this spec with that
    /// seed, so faulted sweeps are as reproducible as clean ones.
    pub faults: Option<&'a FaultSpec>,
}

impl<'a> SweepSpec<'a> {
    /// A sweep with random workloads and default options — the shape
    /// of almost every experiment.
    #[must_use]
    pub fn new(topology: &'a Topology, k: usize, seeds: u64) -> Self {
        SweepSpec {
            topology,
            k,
            seeds,
            workload: WorkloadSpec::Random,
            options: RunOptions::default(),
            faults: None,
        }
    }
}

/// Probes the seed-0 build of `topology` for its network parameters
/// (experiments report `n`, `D`, `Δ` of the family's representative).
///
/// # Panics
///
/// Panics if the topology fails to build.
#[must_use]
pub fn probe(topology: &Topology) -> NetParams {
    NetParams::of_graph(&topology.build(0).expect("topology builds"))
}

/// Runs the sweep: one session of `protocol` per seed, fanned out
/// across [`crate::parallel::thread_count`] worker threads and
/// collected back in seed order, so every aggregate computed from the
/// returned reports is bit-identical to a sequential run.
///
/// # Panics
///
/// Panics if a topology fails to build or a session errors.
#[must_use]
pub fn sweep_protocol<P>(protocol: &P, spec: &SweepSpec) -> Vec<SessionReport<P::Meta>>
where
    P: BroadcastProtocol + Sync,
    P::Meta: Send,
{
    let n = probe(spec.topology).n;
    let seeds = usize::try_from(spec.seeds).expect("seed count fits usize");
    par_map_indexed(seeds, |i| {
        let seed = i as u64;
        let graph = spec.topology.build(seed).expect("topology builds");
        let workload = spec.workload.build(n, spec.k, seed);
        match spec.faults {
            None => run_protocol_on_graph(protocol, graph, &workload, seed, spec.options)
                .expect("session runs"),
            Some(fspec) => {
                let faults = fspec
                    .build(graph.len(), seed)
                    .expect("fault spec validated by caller");
                run_protocol_on_graph_with_faults(
                    protocol,
                    graph,
                    &workload,
                    seed,
                    spec.options,
                    faults,
                )
                .expect("session runs")
            }
        }
    })
}

/// Folds the traces of a sweep into one [`TraceSummary`], merging in
/// seed order — the reports come back seed-ordered regardless of the
/// worker-thread count, so the merged summary (including its stage
/// order) is `KBCAST_THREADS`-invariant. Reports without a trace
/// (sweeps run without [`RunOptions::trace`]) contribute nothing.
#[must_use]
pub fn merge_traces<M>(reports: &[SessionReport<M>]) -> TraceSummary {
    let mut merged = TraceSummary::default();
    for r in reports {
        if let Some(trace) = &r.trace {
            merged.merge(&trace.summary());
        }
    }
    merged
}

/// Successful reports of a sweep, in seed order.
pub fn successes<M>(reports: &[SessionReport<M>]) -> impl Iterator<Item = &SessionReport<M>> {
    reports.iter().filter(|r| r.success)
}

/// Median of `f` over the successful reports (0 if none).
pub fn median_over<M>(reports: &[SessionReport<M>], f: impl Fn(&SessionReport<M>) -> f64) -> f64 {
    let vals: Vec<f64> = successes(reports).map(f).collect();
    crate::stats::median(&vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbcast::baseline::BiiProtocol;
    use kbcast::runner::CodedProtocol;
    use kbcast::session::run_protocol;

    #[test]
    fn sweep_runs_all_seeds_in_order() {
        let topo = Topology::Path { n: 6 };
        let spec = SweepSpec::new(&topo, 4, 3);
        let reports = sweep_protocol(&CodedProtocol::default(), &spec);
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.success && r.n == 6 && r.k == 4));
    }

    #[test]
    fn sweep_matches_sequential_sessions_bitwise() {
        let topo = Topology::Gnp { n: 20, p: 0.3 };
        let spec = SweepSpec::new(&topo, 6, 4);
        let swept = sweep_protocol(&BiiProtocol::default(), &spec);
        for (seed, r) in swept.iter().enumerate() {
            let w = Workload::random(20, 6, seed as u64);
            let seq = run_protocol(
                &BiiProtocol::default(),
                &topo,
                &w,
                seed as u64,
                RunOptions::default(),
            )
            .expect("session runs");
            assert_eq!(r.success, seq.success);
            assert_eq!(r.rounds_total, seq.rounds_total);
            assert_eq!(r.stats, seq.stats);
        }
    }

    #[test]
    fn workload_spec_shapes() {
        assert_eq!(
            WorkloadSpec::Random.build(10, 7, 1),
            Workload::random(10, 7, 1)
        );
        assert_eq!(
            WorkloadSpec::RoundRobin.build(4, 6, 9),
            Workload::round_robin(4, 6)
        );
        assert_eq!(
            WorkloadSpec::SingleSource(2).build(5, 3, 0),
            Workload::single_source(5, 2, 3)
        );
    }

    #[test]
    fn median_over_skips_failures() {
        let topo = Topology::Path { n: 5 };
        let mut spec = SweepSpec::new(&topo, 3, 2);
        // A 1-round cap guarantees failure; medians over successes
        // then collapse to the empty-slice default while the reports
        // themselves survive.
        spec.options.max_rounds = Some(1);
        let reports = sweep_protocol(&CodedProtocol::default(), &spec);
        assert_eq!(reports.len(), 2);
        assert_eq!(successes(&reports).count(), 0);
        assert_eq!(median_over(&reports, |r| r.rounds_total as f64), 0.0);
    }
}
