//! Algorithm-comparison sweeps used by experiments E1, E2, E3 and E12:
//! run the coded algorithm, the uncoded ablation and the BII baseline
//! over a parameter grid via [`crate::session::sweep_protocol`] and
//! aggregate per-algorithm medians.

use kbcast::baseline::BiiProtocol;
use kbcast::runner::CodedProtocol;
use kbcast::session::SessionReport;
use radio_net::topology::Topology;

use crate::session::{probe, successes, sweep_protocol, SweepSpec};
use crate::stats::median;

/// Which algorithm a record belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// The paper's coded algorithm (all four stages).
    Coded,
    /// The paper's algorithm with `group_size_override = 1` (no coding
    /// gain in Stage 4).
    Uncoded,
    /// The Bar-Yehuda–Israeli–Itai baseline.
    Bii,
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algo::Coded => write!(f, "coded"),
            Algo::Uncoded => write!(f, "uncoded"),
            Algo::Bii => write!(f, "bii"),
        }
    }
}

/// One aggregated measurement (median over seeds).
#[derive(Clone, Debug)]
pub struct Point {
    /// Algorithm.
    pub algo: Algo,
    /// Nodes.
    pub n: usize,
    /// Packets.
    pub k: usize,
    /// Diameter of the (first seed's) topology.
    pub diameter: usize,
    /// Max degree of the (first seed's) topology.
    pub max_degree: usize,
    /// Seeds that completed successfully.
    pub successes: usize,
    /// Seeds attempted.
    pub seeds: usize,
    /// Median total rounds over successful seeds.
    pub rounds: f64,
    /// Median amortized rounds per packet over successful seeds.
    pub amortized: f64,
    /// Median Stage 4 (dissemination) rounds — 0 for BII, which has no
    /// stages.
    pub dissem_rounds: f64,
}

/// Medians of `(rounds, amortized, dissem)` over the successful reports,
/// plus the success count.
fn summarize<M>(
    reports: &[SessionReport<M>],
    dissem: impl Fn(&SessionReport<M>) -> f64,
) -> (usize, f64, f64, f64) {
    let ok: Vec<&SessionReport<M>> = successes(reports).collect();
    #[allow(clippy::cast_precision_loss)]
    let rounds: Vec<f64> = ok.iter().map(|r| r.rounds_total as f64).collect();
    let amortized: Vec<f64> = ok.iter().map(|r| r.amortized_rounds_per_packet()).collect();
    let dissem: Vec<f64> = ok.iter().map(|r| dissem(r)).collect();
    (
        ok.len(),
        median(&rounds),
        median(&amortized),
        median(&dissem),
    )
}

/// Runs `algo` on `topology` with a random `k`-packet workload for each
/// seed in `0..seeds`, and aggregates.
///
/// Seeds fan out across [`crate::parallel::thread_count`] worker
/// threads; results are collected back in seed order, so every
/// aggregate is bit-identical to a sequential run (set
/// `KBCAST_THREADS=1` to force one).
///
/// # Panics
///
/// Panics if the topology fails to build.
#[must_use]
pub fn measure(algo: Algo, topology: &Topology, k: usize, seeds: u64) -> Point {
    let net = probe(topology);
    let spec = SweepSpec::new(topology, k, seeds);
    let (successes, rounds, amortized, dissem_rounds) = match algo {
        Algo::Coded | Algo::Uncoded => {
            let proto = CodedProtocol {
                config: None,
                uncoded: algo == Algo::Uncoded,
            };
            #[allow(clippy::cast_precision_loss)]
            summarize(&sweep_protocol(&proto, &spec), |r| {
                r.meta.stages.disseminate as f64
            })
        }
        Algo::Bii => summarize(&sweep_protocol(&BiiProtocol::default(), &spec), |_| 0.0),
    };
    Point {
        algo,
        n: net.n,
        k,
        diameter: net.diameter,
        max_degree: net.max_degree,
        successes,
        seeds: usize::try_from(seeds).expect("fits"),
        rounds,
        amortized,
        dissem_rounds,
    }
}

/// A G(n, p) topology with `p = 2·ln n / n` — connected w.h.p., diameter
/// `O(log n)`; the default experiment family.
#[must_use]
pub fn gnp_standard(n: usize) -> Topology {
    #[allow(clippy::cast_precision_loss)]
    let p = (2.0 * (n as f64).ln() / n as f64).min(1.0);
    Topology::Gnp { n, p }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbcast::baseline::run_bii_on_graph;
    use kbcast::runner::{run_on_graph, RunOptions, Workload};

    #[test]
    fn measure_small_coded() {
        let p = measure(Algo::Coded, &Topology::Path { n: 6 }, 4, 2);
        assert_eq!(p.successes, 2);
        assert!(p.rounds > 0.0);
        assert!(p.amortized > 0.0);
    }

    #[test]
    fn measure_small_bii() {
        let p = measure(Algo::Bii, &Topology::Path { n: 6 }, 4, 2);
        assert_eq!(p.successes, 2);
        assert_eq!(p.dissem_rounds, 0.0);
    }

    #[test]
    fn measure_bit_identical_to_legacy_entry_points() {
        // `measure` routes through the protocol trait and the parallel
        // sweep driver; rebuild the same aggregates from the legacy
        // single-run entry points in a plain sequential loop and demand
        // bit-identical medians.
        let topo = Topology::Gnp { n: 20, p: 0.3 };
        for algo in [Algo::Coded, Algo::Bii] {
            let p = measure(algo, &topo, 6, 4);
            let seq: Vec<Option<(f64, f64, f64)>> = (0..4)
                .map(|seed| {
                    let w = Workload::random(20, 6, seed);
                    let g = topo.build(seed).expect("topology builds");
                    #[allow(clippy::cast_precision_loss)]
                    match algo {
                        Algo::Coded | Algo::Uncoded => {
                            let r = run_on_graph(g, &w, None, seed, RunOptions::default())
                                .expect("run");
                            r.success.then(|| {
                                (
                                    r.rounds_total as f64,
                                    r.amortized_rounds_per_packet(),
                                    r.stages.disseminate as f64,
                                )
                            })
                        }
                        Algo::Bii => {
                            let r = run_bii_on_graph(g, &w, None, seed).expect("run");
                            r.success.then(|| {
                                (r.rounds_total as f64, r.amortized_rounds_per_packet(), 0.0)
                            })
                        }
                    }
                })
                .collect();
            let ok = || seq.iter().flatten();
            assert_eq!(p.successes, ok().count());
            let rounds: Vec<f64> = ok().map(|r| r.0).collect();
            let amortized: Vec<f64> = ok().map(|r| r.1).collect();
            let dissem: Vec<f64> = ok().map(|r| r.2).collect();
            assert_eq!(p.rounds.to_bits(), median(&rounds).to_bits());
            assert_eq!(p.amortized.to_bits(), median(&amortized).to_bits());
            assert_eq!(p.dissem_rounds.to_bits(), median(&dissem).to_bits());
        }
    }

    #[test]
    fn per_seed_sessions_independent_of_thread_count() {
        use crate::parallel::par_map_indexed_with;
        use kbcast::session::run_protocol_on_graph;
        let topo = Topology::Path { n: 8 };
        let proto = CodedProtocol::default();
        let run = |i: usize| {
            let seed = i as u64;
            let g = topo.build(seed).expect("topology builds");
            let w = Workload::random(8, 4, seed);
            let r = run_protocol_on_graph(&proto, g, &w, seed, RunOptions::default()).expect("run");
            (r.success, r.rounds_total, r.stats)
        };
        let one = par_map_indexed_with(1, 3, run);
        let many = par_map_indexed_with(3, 3, run);
        assert_eq!(one, many);
    }

    #[test]
    fn gnp_standard_is_connected() {
        for n in [16, 64, 256] {
            assert!(gnp_standard(n).build(1).unwrap().is_connected());
        }
    }

    #[test]
    fn algo_display() {
        assert_eq!(Algo::Coded.to_string(), "coded");
        assert_eq!(Algo::Uncoded.to_string(), "uncoded");
        assert_eq!(Algo::Bii.to_string(), "bii");
    }
}
