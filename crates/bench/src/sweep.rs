//! Shared sweep driver used by experiments E1, E2, E3 and E12: run the
//! coded algorithm, the uncoded ablation and the BII baseline over a
//! parameter grid and collect per-run records.

use kbcast::baseline::{run_bii_on_graph, BiiConfig};
use kbcast::runner::{run_on_graph, RunOptions, Workload};
use kbcast::Config;
use radio_net::topology::Topology;

use crate::parallel::par_map_indexed;
use crate::stats::median;

/// Which algorithm a record belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// The paper's coded algorithm (all four stages).
    Coded,
    /// The paper's algorithm with `group_size_override = 1` (no coding
    /// gain in Stage 4).
    Uncoded,
    /// The Bar-Yehuda–Israeli–Itai baseline.
    Bii,
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algo::Coded => write!(f, "coded"),
            Algo::Uncoded => write!(f, "uncoded"),
            Algo::Bii => write!(f, "bii"),
        }
    }
}

/// One aggregated measurement (median over seeds).
#[derive(Clone, Debug)]
pub struct Point {
    /// Algorithm.
    pub algo: Algo,
    /// Nodes.
    pub n: usize,
    /// Packets.
    pub k: usize,
    /// Diameter of the (first seed's) topology.
    pub diameter: usize,
    /// Max degree of the (first seed's) topology.
    pub max_degree: usize,
    /// Seeds that completed successfully.
    pub successes: usize,
    /// Seeds attempted.
    pub seeds: usize,
    /// Median total rounds over successful seeds.
    pub rounds: f64,
    /// Median amortized rounds per packet over successful seeds.
    pub amortized: f64,
    /// Median Stage 4 (dissemination) rounds — 0 for BII, which has no
    /// stages.
    pub dissem_rounds: f64,
}

/// Runs one seed of `algo` and returns `(rounds, amortized, dissem)` on
/// success, `None` on failure. Builds the seed's topology exactly once
/// and hands it to the `*_on_graph` entry points.
fn run_seed(algo: Algo, topology: &Topology, n: usize, k: usize, seed: u64) -> Option<(f64, f64, f64)> {
    let w = Workload::random(n, k, seed);
    let g = topology.build(seed).expect("topology builds");
    match algo {
        Algo::Coded | Algo::Uncoded => {
            let mut cfg =
                Config::for_network(g.len(), g.diameter().expect("connected"), g.max_degree());
            if algo == Algo::Uncoded {
                cfg.group_size_override = Some(1);
            }
            let r = run_on_graph(g, &w, Some(cfg), seed, RunOptions::default()).expect("run");
            r.success.then(|| {
                #[allow(clippy::cast_precision_loss)]
                (
                    r.rounds_total as f64,
                    r.amortized_rounds_per_packet(),
                    r.stages.disseminate as f64,
                )
            })
        }
        Algo::Bii => {
            let cfg = BiiConfig::for_network(g.len(), g.max_degree());
            let r = run_bii_on_graph(g, &w, Some(cfg), seed).expect("run");
            r.success.then(|| {
                #[allow(clippy::cast_precision_loss)]
                (r.rounds_total as f64, r.amortized_rounds_per_packet(), 0.0)
            })
        }
    }
}

/// Runs `algo` on `topology` with a random `k`-packet workload for each
/// seed in `0..seeds`, and aggregates.
///
/// Seeds fan out across [`crate::parallel::thread_count`] worker
/// threads; results are collected back in seed order, so every
/// aggregate is bit-identical to a sequential run (set
/// `KBCAST_THREADS=1` to force one).
///
/// # Panics
///
/// Panics if the topology fails to build.
#[must_use]
pub fn measure(algo: Algo, topology: &Topology, k: usize, seeds: u64) -> Point {
    let probe = topology.build(0).expect("topology builds");
    let n = probe.len();
    let diameter = probe.diameter().expect("connected");
    let max_degree = probe.max_degree();
    let seeds = usize::try_from(seeds).expect("fits");
    let runs = par_map_indexed(seeds, |i| run_seed(algo, topology, n, k, i as u64));
    let ok = || runs.iter().flatten();
    let rounds: Vec<f64> = ok().map(|r| r.0).collect();
    let amortized: Vec<f64> = ok().map(|r| r.1).collect();
    let dissem: Vec<f64> = ok().map(|r| r.2).collect();
    Point {
        algo,
        n,
        k,
        diameter,
        max_degree,
        successes: ok().count(),
        seeds,
        rounds: median(&rounds),
        amortized: median(&amortized),
        dissem_rounds: median(&dissem),
    }
}

/// A G(n, p) topology with `p = 2·ln n / n` — connected w.h.p., diameter
/// `O(log n)`; the default experiment family.
#[must_use]
pub fn gnp_standard(n: usize) -> Topology {
    #[allow(clippy::cast_precision_loss)]
    let p = (2.0 * (n as f64).ln() / n as f64).min(1.0);
    Topology::Gnp { n, p }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_small_coded() {
        let p = measure(Algo::Coded, &Topology::Path { n: 6 }, 4, 2);
        assert_eq!(p.successes, 2);
        assert!(p.rounds > 0.0);
        assert!(p.amortized > 0.0);
    }

    #[test]
    fn measure_small_bii() {
        let p = measure(Algo::Bii, &Topology::Path { n: 6 }, 4, 2);
        assert_eq!(p.successes, 2);
        assert_eq!(p.dissem_rounds, 0.0);
    }

    #[test]
    fn parallel_measure_bit_identical_to_sequential() {
        let topo = Topology::Gnp { n: 20, p: 0.3 };
        // `measure` fans seeds across worker threads; rebuild the same
        // aggregates with a plain sequential loop over the same per-seed
        // runner and demand bit-identical medians.
        for algo in [Algo::Coded, Algo::Bii] {
            let p = measure(algo, &topo, 6, 4);
            let seq: Vec<_> = (0..4).map(|s| run_seed(algo, &topo, 20, 6, s)).collect();
            let ok = || seq.iter().flatten();
            assert_eq!(p.successes, ok().count());
            let rounds: Vec<f64> = ok().map(|r| r.0).collect();
            let amortized: Vec<f64> = ok().map(|r| r.1).collect();
            let dissem: Vec<f64> = ok().map(|r| r.2).collect();
            assert_eq!(p.rounds.to_bits(), median(&rounds).to_bits());
            assert_eq!(p.amortized.to_bits(), median(&amortized).to_bits());
            assert_eq!(p.dissem_rounds.to_bits(), median(&dissem).to_bits());
        }
    }

    #[test]
    fn run_seed_independent_of_thread_count() {
        use crate::parallel::par_map_indexed_with;
        let topo = Topology::Path { n: 8 };
        let one = par_map_indexed_with(1, 3, |i| run_seed(Algo::Coded, &topo, 8, 4, i as u64));
        let many = par_map_indexed_with(3, 3, |i| run_seed(Algo::Coded, &topo, 8, 4, i as u64));
        let bits = |v: &[Option<(f64, f64, f64)>]| -> Vec<Option<(u64, u64, u64)>> {
            v.iter()
                .map(|o| o.map(|(a, b, c)| (a.to_bits(), b.to_bits(), c.to_bits())))
                .collect()
        };
        assert_eq!(bits(&one), bits(&many));
    }

    #[test]
    fn gnp_standard_is_connected() {
        for n in [16, 64, 256] {
            assert!(gnp_standard(n).build(1).unwrap().is_connected());
        }
    }

    #[test]
    fn algo_display() {
        assert_eq!(Algo::Coded.to_string(), "coded");
        assert_eq!(Algo::Uncoded.to_string(), "uncoded");
        assert_eq!(Algo::Bii.to_string(), "bii");
    }
}
