//! Shared sweep driver used by experiments E1, E2, E3 and E12: run the
//! coded algorithm, the uncoded ablation and the BII baseline over a
//! parameter grid and collect per-run records.

use kbcast::baseline::{run_bii, BiiConfig};
use kbcast::runner::{run, Workload};
use kbcast::Config;
use radio_net::topology::Topology;

use crate::stats::median;

/// Which algorithm a record belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// The paper's coded algorithm (all four stages).
    Coded,
    /// The paper's algorithm with `group_size_override = 1` (no coding
    /// gain in Stage 4).
    Uncoded,
    /// The Bar-Yehuda–Israeli–Itai baseline.
    Bii,
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algo::Coded => write!(f, "coded"),
            Algo::Uncoded => write!(f, "uncoded"),
            Algo::Bii => write!(f, "bii"),
        }
    }
}

/// One aggregated measurement (median over seeds).
#[derive(Clone, Debug)]
pub struct Point {
    /// Algorithm.
    pub algo: Algo,
    /// Nodes.
    pub n: usize,
    /// Packets.
    pub k: usize,
    /// Diameter of the (first seed's) topology.
    pub diameter: usize,
    /// Max degree of the (first seed's) topology.
    pub max_degree: usize,
    /// Seeds that completed successfully.
    pub successes: usize,
    /// Seeds attempted.
    pub seeds: usize,
    /// Median total rounds over successful seeds.
    pub rounds: f64,
    /// Median amortized rounds per packet over successful seeds.
    pub amortized: f64,
    /// Median Stage 4 (dissemination) rounds — 0 for BII, which has no
    /// stages.
    pub dissem_rounds: f64,
}

/// Runs `algo` on `topology` with a random `k`-packet workload for each
/// seed in `0..seeds`, and aggregates.
///
/// # Panics
///
/// Panics if the topology fails to build.
#[must_use]
pub fn measure(algo: Algo, topology: &Topology, k: usize, seeds: u64) -> Point {
    let probe = topology.build(0).expect("topology builds");
    let n = probe.len();
    let diameter = probe.diameter().expect("connected");
    let max_degree = probe.max_degree();
    let mut rounds = Vec::new();
    let mut amortized = Vec::new();
    let mut dissem = Vec::new();
    let mut successes = 0;
    for seed in 0..seeds {
        let w = Workload::random(n, k, seed);
        match algo {
            Algo::Coded | Algo::Uncoded => {
                let g = topology.build(seed).expect("topology builds");
                let mut cfg =
                    Config::for_network(g.len(), g.diameter().expect("connected"), g.max_degree());
                if algo == Algo::Uncoded {
                    cfg.group_size_override = Some(1);
                }
                let r = run(topology, &w, Some(cfg), seed).expect("run");
                if r.success {
                    successes += 1;
                    #[allow(clippy::cast_precision_loss)]
                    rounds.push(r.rounds_total as f64);
                    amortized.push(r.amortized_rounds_per_packet());
                    #[allow(clippy::cast_precision_loss)]
                    dissem.push(r.stages.disseminate as f64);
                }
            }
            Algo::Bii => {
                let g = topology.build(seed).expect("topology builds");
                let cfg = BiiConfig::for_network(g.len(), g.max_degree());
                let r = run_bii(topology, &w, Some(cfg), seed).expect("run");
                if r.success {
                    successes += 1;
                    #[allow(clippy::cast_precision_loss)]
                    rounds.push(r.rounds_total as f64);
                    amortized.push(r.amortized_rounds_per_packet());
                    dissem.push(0.0);
                }
            }
        }
    }
    Point {
        algo,
        n,
        k,
        diameter,
        max_degree,
        successes,
        seeds: usize::try_from(seeds).expect("fits"),
        rounds: median(&rounds),
        amortized: median(&amortized),
        dissem_rounds: median(&dissem),
    }
}

/// A G(n, p) topology with `p = 2·ln n / n` — connected w.h.p., diameter
/// `O(log n)`; the default experiment family.
#[must_use]
pub fn gnp_standard(n: usize) -> Topology {
    #[allow(clippy::cast_precision_loss)]
    let p = (2.0 * (n as f64).ln() / n as f64).min(1.0);
    Topology::Gnp { n, p }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_small_coded() {
        let p = measure(Algo::Coded, &Topology::Path { n: 6 }, 4, 2);
        assert_eq!(p.successes, 2);
        assert!(p.rounds > 0.0);
        assert!(p.amortized > 0.0);
    }

    #[test]
    fn measure_small_bii() {
        let p = measure(Algo::Bii, &Topology::Path { n: 6 }, 4, 2);
        assert_eq!(p.successes, 2);
        assert_eq!(p.dissem_rounds, 0.0);
    }

    #[test]
    fn gnp_standard_is_connected() {
        for n in [16, 64, 256] {
            assert!(gnp_standard(n).build(1).unwrap().is_connected());
        }
    }

    #[test]
    fn algo_display() {
        assert_eq!(Algo::Coded.to_string(), "coded");
        assert_eq!(Algo::Uncoded.to_string(), "uncoded");
        assert_eq!(Algo::Bii.to_string(), "bii");
    }
}
