//! **E21 (extension) — collision detection vs. the no-CD protocols.**
//!
//! Beyond the paper (whose model explicitly has *no* collision
//! detection): runs the GHK-style CD broadcast — beep wave, leader
//! election by collision, CD-adaptive flood — on the `WithCd` engine
//! side by side with the paper's coded algorithm and the BII baseline
//! on the no-CD engine, across the topology zoo and all six fault
//! families. Records success rate, median rounds, delivered mass,
//! fault-lost receptions, and for GHK the election outcome (how often
//! a clean unique leader emerged, which injected noise legitimately
//! breaks: jamming reads as collision-noise to CD listeners, forging
//! election signals).
//!
//! Expected shapes (see EXPERIMENTS.md §E21): at small k the flooders
//! (GHK and BII) beat the coded algorithm's fixed election + BFS
//! prologue, and the coded pipeline only amortizes ahead as k grows;
//! under contention-heavy faults the CD backoff keeps GHK's delivered
//! mass graceful, while jamming uniquely corrupts the CD stages (noise
//! is signal to them) without touching packet delivery — the flood is
//! leader-independent by design.
//!
//! Output: a table to stdout and `results/E21_cd.json` (redirect with
//! `KB_E21_OUT`; `scripts/check.sh` runs the quick grid8×8
//! configuration as its cd-smoke stage). Deterministic in the fixed
//! seed range — same binary, same scale, same JSON, bit for bit.

use std::fmt::Write as _;

use kbcast::baseline::BiiProtocol;
use kbcast::ghk::GhkProtocol;
use kbcast::runner::CodedProtocol;
use kbcast::session::SessionReport;
use kbcast_bench::session::{sweep_protocol, SweepSpec};
use kbcast_bench::stats::median;
use kbcast_bench::table::{f3, Table};
use kbcast_bench::{verify_from_env, Scale};
use radio_net::faults::FaultSpec;
use radio_net::stats::SimStats;
use radio_net::topology::Topology;

/// One protocol × topology × fault row.
struct Entry {
    topology: String,
    fault: String,
    protocol: &'static str,
    ok: u64,
    seeds: u64,
    median_rounds: f64,
    mean_delivered: f64,
    lost_receptions: u64,
    /// Sessions whose election produced the unique maximum-id leader
    /// (GHK only).
    clean_elections: Option<u64>,
}

fn lost(stats: &SimStats) -> u64 {
    stats.dropped + stats.jammed + stats.crashed_rx + stats.wakeups_suppressed
}

fn summarize<M>(
    topo: &Topology,
    fault: &FaultSpec,
    protocol: &'static str,
    reports: &[SessionReport<M>],
    clean_elections: Option<u64>,
) -> Entry {
    let ok = reports.iter().filter(|r| r.success).count() as u64;
    #[allow(clippy::cast_precision_loss)]
    let rounds: Vec<f64> = reports
        .iter()
        .filter(|r| r.success)
        .map(|r| r.rounds_total as f64)
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let mean_delivered =
        reports.iter().map(|r| r.delivered_fraction).sum::<f64>() / reports.len().max(1) as f64;
    Entry {
        topology: topo.to_string(),
        fault: fault.label(),
        protocol,
        ok,
        seeds: reports.len() as u64,
        median_rounds: median(&rounds),
        mean_delivered,
        lost_receptions: reports.iter().map(|r| lost(&r.stats)).sum(),
        clean_elections,
    }
}

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.pick(2u64, 5);
    let zoo: Vec<(Topology, usize)> = if matches!(scale, Scale::Quick) {
        vec![(Topology::Grid2d { rows: 8, cols: 8 }, 8usize)]
    } else {
        vec![
            (Topology::Grid2d { rows: 16, cols: 16 }, 16usize),
            (Topology::Gnp { n: 64, p: 0.13 }, 16usize),
            (Topology::Cycle { n: 33 }, 8usize),
        ]
    };
    let specs: Vec<&str> = vec![
        "none",
        "uniform:rate=0.15",
        "ge:p_bad=0.01,p_good=0.1,loss_good=0,loss_bad=0.9",
        "crash:frac=0.25,from=0,until=2000,down=1000",
        "jam:budget=200",
        "wakeup:rate=0.5",
    ];

    println!("E21 (extension): collision-detection broadcast (ghk) vs coded/bii");
    println!(
        "({} topologies, {seeds} seeds per protocol x topology x fault)",
        zoo.len()
    );
    println!();

    let mut entries: Vec<Entry> = Vec::new();
    for (topo, k) in &zoo {
        // GHK nodes all start awake (a beep cannot wake a sleeping
        // radio), so the expected election winner is always n - 1.
        let n_minus_1 = topo.build(0).expect("topology builds").len() as u64 - 1;
        for s in &specs {
            let fault: FaultSpec = s.parse().expect("experiment fault specs parse");
            fault.build(16, 0).expect("experiment fault specs validate");

            let mut spec = SweepSpec::new(topo, *k, seeds);
            spec.options.verify = verify_from_env();
            spec.faults = if fault.is_none() { None } else { Some(&fault) };

            let ghk = sweep_protocol(&GhkProtocol::default(), &spec);
            let clean_elections = ghk
                .iter()
                .filter(|r| r.meta.leader == Some(n_minus_1))
                .count() as u64;
            entries.push(summarize(topo, &fault, "ghk", &ghk, Some(clean_elections)));

            let coded = sweep_protocol(&CodedProtocol::default(), &spec);
            entries.push(summarize(topo, &fault, "coded", &coded, None));

            let bii = sweep_protocol(&BiiProtocol::default(), &spec);
            entries.push(summarize(topo, &fault, "bii", &bii, None));
        }
    }

    let mut t = Table::new(&[
        "topology",
        "fault",
        "protocol",
        "success",
        "median rounds",
        "delivered",
        "fault-lost rx",
        "clean elections",
    ]);
    for e in &entries {
        t.row(&[
            e.topology.clone(),
            e.fault.clone(),
            e.protocol.to_string(),
            format!("{}/{}", e.ok, e.seeds),
            format!("{:.0}", e.median_rounds),
            f3(e.mean_delivered),
            format!("{}", e.lost_receptions),
            e.clean_elections
                .map_or_else(|| "-".to_string(), |c| format!("{c}/{}", e.seeds)),
        ]);
    }
    t.print();
    println!();
    println!("shape check: clean channels elect the max id every seed; at small k the");
    println!("flooders (ghk/bii) beat coded's fixed election+BFS prologue, and coded only");
    println!("amortizes ahead as k grows; jamming can corrupt GHK elections (noise IS its");
    println!("signal) but not its delivery — the flood is leader-independent; the CD");
    println!("backoff keeps GHK's delivered mass graceful under bursty loss.");

    // Deterministic JSON (no timestamps): reproducible bit-for-bit
    // from the fixed seed range.
    let mut json_entries = Vec::new();
    for e in &entries {
        let mut j = String::new();
        write!(
            j,
            "    {{\"topology\": \"{}\", \"fault\": \"{}\", \"protocol\": \"{}\", \
             \"success\": {}, \"seeds\": {}, \"median_rounds\": {:.1}, \
             \"mean_delivered\": {:.6}, \"lost_receptions\": {}",
            e.topology,
            e.fault,
            e.protocol,
            e.ok,
            e.seeds,
            e.median_rounds,
            e.mean_delivered,
            e.lost_receptions
        )
        .expect("write to string");
        if let Some(c) = e.clean_elections {
            write!(j, ", \"clean_elections\": {c}").expect("write to string");
        }
        j.push('}');
        json_entries.push(j);
    }
    let json = format!(
        "{{\n  \"experiment\": \"E21_cd\",\n  \"seeds\": {seeds},\n  \"entries\": [\n{}\n  ]\n}}\n",
        json_entries.join(",\n")
    );
    let path = std::env::var("KB_E21_OUT").unwrap_or_else(|_| "results/E21_cd.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e} (printing instead)\n{json}"),
    }
}
