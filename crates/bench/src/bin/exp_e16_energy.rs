//! **E16 — channel cost per unit of information (the introduction's
//! "inherited average cost per amount of information is only
//! `O(logΔ)`").**
//!
//! Rounds are the paper's primary metric, but its motivation is the
//! *cost of information dissemination*: transmissions and bits on the
//! air per delivered packet. This experiment sweeps `k` and reports,
//! for the coded algorithm and BII:
//!
//! * transmissions per packet per node (the "energy" each node spends
//!   per unit of information it ends up holding);
//! * channel bits per payload bit actually delivered;
//! * the coded algorithm's per-message-type breakdown (where the
//!   transmissions go).

use kbcast::baseline::BiiProtocol;
use kbcast::runner::CodedProtocol;
use kbcast_bench::session::{sweep_protocol, SweepSpec};
use kbcast_bench::sweep::gnp_standard;
use kbcast_bench::table::{f2, Table};
use kbcast_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(64, 128);
    let seeds = scale.pick(2u64, 3);
    let topo = gnp_standard(n);
    println!("E16: channel cost per unit information, {topo}, {seeds} seeds/point");
    println!();

    let mut t = Table::new(&[
        "k",
        "coded tx/pkt/node",
        "bii tx/pkt/node",
        "coded bits/payload-bit",
        "bii bits/payload-bit",
    ]);
    let mut breakdown = None;
    for &k in &scale.pick(vec![32usize, 128], vec![32, 128, 512, 1024]) {
        let mut c_tx = 0.0;
        let mut b_tx = 0.0;
        let mut c_bits = 0.0;
        let mut b_bits = 0.0;
        let mut ok = 0u32;
        // Same topology, seeds and (seeded) workloads for both sweeps,
        // so zipping pairs each coded run with its BII twin.
        let spec = SweepSpec::new(&topo, k, seeds);
        let coded = sweep_protocol(&CodedProtocol::default(), &spec);
        let bii = sweep_protocol(&BiiProtocol::default(), &spec);
        for (r, b) in coded.iter().zip(&bii) {
            // Payload bits delivered: every node ends with k packets of
            // 4-byte payloads.
            #[allow(clippy::cast_precision_loss)]
            let payload_bits = (k * 32 * n) as f64;
            if !(r.success && b.success) {
                continue;
            }
            ok += 1;
            #[allow(clippy::cast_precision_loss)]
            {
                c_tx += r.stats.transmissions as f64 / (k * n) as f64;
                b_tx += b.stats.transmissions as f64 / (k * n) as f64;
                c_bits += r.stats.bits_transmitted as f64 / payload_bits;
                b_bits += b.stats.bits_transmitted as f64 / payload_bits;
            }
            if breakdown.is_none() && k >= 512 {
                breakdown = Some(r.meta.tx_by_type);
            }
        }
        let d = f64::from(ok.max(1));
        t.row(&[
            k.to_string(),
            f2(c_tx / d),
            f2(b_tx / d),
            f2(c_bits / d),
            f2(b_bits / d),
        ]);
    }
    t.print();
    println!();
    if let Some(b) = breakdown {
        #[allow(clippy::cast_precision_loss)]
        let total = b.total().max(1) as f64;
        #[allow(clippy::cast_precision_loss)]
        {
            println!(
                "coded transmissions by type (k-dominated run): probe {:.1}%, bfs {:.1}%, \
                 data {:.1}%, ack {:.1}%, alarm {:.1}%, coded {:.1}%",
                100.0 * b.probe as f64 / total,
                100.0 * b.bfs as f64 / total,
                100.0 * b.data as f64 / total,
                100.0 * b.ack as f64 / total,
                100.0 * b.alarm as f64 / total,
                100.0 * b.coded as f64 / total,
            );
        }
    }
    println!();
    println!("claim check: both per-packet-per-node transmission counts flatten with k;");
    println!("the coded algorithm's is the smaller asymptote, and the channel-bit overhead per");
    println!("payload bit reflects the ≤ 2x coded-message size bound (header + payload).");
}
