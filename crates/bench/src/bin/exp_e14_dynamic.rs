//! **E14 (extension) — dynamic packet arrivals via batch pipelining.**
//!
//! Beyond the paper: its conclusion poses the dynamic setting as an open
//! problem. The implemented adaptation loops Stage 3 + Stage 4 in
//! batches (see `kbcast::dynamic`). This experiment sweeps the arrival
//! rate and measures per-packet latency and per-batch throughput: at low
//! rates latency is dominated by the batch-framing floor (the static
//! `(D + log n)·log n`-ish term paid per batch); at high rates batches
//! grow and the amortized `O(logΔ)` per-packet regime of the static
//! analysis reappears.

use kbcast::dynamic::{run_dynamic, Arrival};
use kbcast_bench::parallel::par_map_indexed;
use kbcast_bench::sweep::gnp_standard;
use kbcast_bench::table::{f1, Table};
use kbcast_bench::Scale;
use radio_net::rng;
use rand::Rng;

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(32, 64);
    let seeds = 2u64;
    let horizon = 4_000_000u64;
    let topo = gnp_standard(n);
    println!("E14 (extension): dynamic arrivals, {topo}, {seeds} seeds/row");
    println!("Poisson-like arrivals at the given mean inter-arrival gap; 2000-round warmup wave");
    println!();

    let mut t = Table::new(&[
        "mean gap",
        "packets",
        "batches",
        "mean batch k",
        "mean latency",
        "rounds/packet",
        "ok",
    ]);
    for &gap in &[2_000u64, 500, 100, 20] {
        let mut oks = 0;
        let mut batches = 0.0;
        let mut mean_k = 0.0;
        let mut lat = 0.0;
        let mut rpp = 0.0;
        let mut total_packets = 0usize;
        let runs = par_map_indexed(usize::try_from(seeds).expect("fits"), |i| {
            let seed = i as u64;
            let mut r = rng::stream(seed, rng::salts::WORKLOAD);
            let mut arrivals: Vec<Arrival> = (0..4)
                .map(|j| Arrival {
                    round: 0,
                    node: (j * 3) % n,
                    payload: vec![0, j as u8],
                })
                .collect();
            let mut round = 0u64;
            let k_target = scale.pick(60, 150);
            while arrivals.len() < k_target {
                round += r.gen_range(1..=2 * gap);
                arrivals.push(Arrival {
                    round,
                    node: r.gen_range(0..n),
                    payload: vec![1, arrivals.len() as u8],
                });
            }
            let rep = run_dynamic(&topo, &arrivals, None, seed, horizon).expect("run");
            (arrivals.len(), rep)
        });
        for (packets, rep) in &runs {
            total_packets = *packets;
            if rep.success {
                oks += 1;
                #[allow(clippy::cast_precision_loss)]
                {
                    batches += rep.batches.len() as f64;
                    mean_k += rep.batches.iter().map(|b| b.k).sum::<usize>() as f64
                        / rep.batches.len().max(1) as f64;
                }
                lat += rep.mean_latency();
                #[allow(clippy::cast_precision_loss)]
                {
                    rpp += rep.rounds_total as f64 / rep.k.max(1) as f64;
                }
            }
        }
        let d = f64::from(oks.max(1));
        t.row(&[
            gap.to_string(),
            total_packets.to_string(),
            f1(batches / d),
            f1(mean_k / d),
            f1(lat / d),
            f1(rpp / d),
            format!("{oks}/{seeds}"),
        ]);
    }
    t.print();
    println!();
    println!("shape check: higher arrival rates (smaller gaps) pack more packets per batch,");
    println!("so rounds/packet falls toward the static amortized regime — the batching");
    println!("adaptation inherits the paper's asymptotics; at low rates the per-batch");
    println!("framing floor dominates, exactly as the static bound's additive term.");
}
