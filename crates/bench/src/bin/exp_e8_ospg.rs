//! **E8 — Lemma 4: one `OSPG(y)` collects at least half the packets
//! when `y` matches the outstanding count.**
//!
//! Paper claim: a packet assigned a unique slot in `[1, 6y]` reaches the
//! root without collision; with `k ≤ y` packets the unique-slot
//! probability is ≥ 3/4, so one shot delivers ≥ half, w.h.p. The sweep
//! varies `y/k` and measures the delivered fraction: ≥ ~0.5 at
//! `y/k = 1` and rising towards 1, collapsing when `y ≪ k`.

use kbcast_bench::micro::ospg_once;
use kbcast_bench::table::{f3, Table};
use kbcast_bench::Scale;
use radio_net::topology::Topology;

fn main() {
    let scale = Scale::from_env();
    let reps = scale.pick(5, 20);
    let k = scale.pick(64, 256);
    println!("E8: OSPG(y) delivered fraction vs y/k (k={k}, {reps} reps/cell)");
    println!();

    let topologies: Vec<(&str, Topology, usize)> = vec![
        ("rtree(64)", Topology::RandomTree { n: 64 }, 0),
        ("path(32)", Topology::Path { n: 32 }, 0),
        ("star(64)", Topology::Star { n: 64 }, 0),
    ];
    let ratios = [0.125f64, 0.25, 0.5, 1.0, 2.0, 4.0];

    let mut t = Table::new(&["topology", "y/k=1/8", "1/4", "1/2", "1", "2", "4"]);
    for (name, topo, root) in &topologies {
        let n = topo.build(0).unwrap().len();
        let mut cells = vec![name.to_string()];
        for &ratio in &ratios {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let y = ((k as f64) * ratio).round().max(1.0) as usize;
            let mut frac = 0.0;
            for rep in 0..reps {
                // Packets spread over non-root nodes round-robin.
                let mut packets_at = vec![0usize; n];
                for i in 0..k {
                    let node = 1 + (i % (n - 1));
                    let node = if node == *root { 0 } else { node };
                    packets_at[node] += 1;
                }
                frac += ospg_once(topo, *root, &packets_at, y, rep as u64).fraction();
            }
            #[allow(clippy::cast_precision_loss)]
            cells.push(f3(frac / reps as f64));
        }
        t.row(&cells);
    }
    t.print();
    println!();
    println!("claim check (Lemma 4): at y/k ≥ 1 the delivered fraction should be ≥ ~0.5 on");
    println!("every topology, approaching 1 as y/k grows; far below 1 it collapses (slot");
    println!("collisions dominate) — which is exactly why GRAB halves y between shots.");
}
