//! **E10 — The Decay lemma (BGI 1992): constant per-epoch reception
//! probability for any 1 ≤ t ≤ Δ active neighbors.**
//!
//! Every stage of the paper leans on this: a listener whose
//! transmitting neighborhood has unknown size still receives within one
//! `⌈logΔ⌉`-round epoch with probability bounded below by a constant.
//! The sweep measures that probability on a star (t active leaves, hub
//! listening) across t and Δ.

use kbcast_bench::table::{f3, Table};
use kbcast_bench::Scale;
use protocols::decay::Decay;
use radio_net::engine::{Engine, Node};
use radio_net::graph::NodeId;
use radio_net::rng;
use radio_net::topology;
use rand::rngs::SmallRng;

struct Leaf {
    decay: Decay,
    active: bool,
    rng: SmallRng,
}

enum Star {
    Leaf(Leaf),
    Hub(bool),
}

impl Node for Star {
    type Msg = u8;
    fn poll(&mut self, round: u64) -> Option<u8> {
        match self {
            Star::Leaf(l) => (l.active && l.decay.should_transmit(round, &mut l.rng)).then_some(1),
            Star::Hub(_) => None,
        }
    }
    fn receive(&mut self, _round: u64, _msg: &u8) {
        if let Star::Hub(h) = self {
            *h = true;
        }
    }
}

fn reception_probability(delta: usize, t: usize, trials: u64) -> f64 {
    let decay = Decay::new(delta);
    let mut successes = 0u64;
    for trial in 0..trials {
        let g = topology::star(delta + 1).expect("star builds");
        let nodes: Vec<Star> = (0..=delta)
            .map(|i| {
                if i == 0 {
                    Star::Hub(false)
                } else {
                    Star::Leaf(Leaf {
                        decay,
                        active: i <= t,
                        rng: rng::stream(trial, i as u64),
                    })
                }
            })
            .collect();
        let mut e = Engine::new(g, nodes, (0..=delta).map(NodeId::new)).expect("engine");
        e.run(decay.epoch_len() as u64);
        if matches!(e.node(NodeId::new(0)), Star::Hub(true)) {
            successes += 1;
        }
    }
    #[allow(clippy::cast_precision_loss)]
    {
        successes as f64 / trials as f64
    }
}

fn main() {
    let scale = Scale::from_env();
    let trials = scale.pick(300, 3_000);
    println!("E10: per-epoch reception probability under Decay (star: t active of Δ leaves),");
    println!("{trials} trials/cell — claim: bounded below by a constant for ALL 1 ≤ t ≤ Δ");
    println!();

    let deltas = [4usize, 16, 64];
    let mut t = Table::new(&["Δ", "t=1", "t=2", "t=Δ/4", "t=Δ/2", "t=Δ"]);
    let mut global_min = f64::INFINITY;
    for &delta in &deltas {
        let ts = [1, 2, (delta / 4).max(1), (delta / 2).max(1), delta];
        let mut cells = vec![delta.to_string()];
        for &tt in &ts {
            let p = reception_probability(delta, tt, trials);
            global_min = global_min.min(p);
            cells.push(f3(p));
        }
        t.row(&cells);
    }
    t.print();
    println!();
    println!(
        "minimum observed probability: {global_min:.3} (the analytic worst case is ~1/(2e) ≈ \
         0.184; the calibrated constants in Config budget for ≥ 0.2)"
    );
    assert!(global_min >= 0.18, "Decay lemma violated: {global_min}");
}
