//! **E11 — Lemmas 1 & 2: the Chernoff-type tail bounds.**
//!
//! Lemma 1: with `r = ⌊(3d + 2τ)/p⌋` Bernoulli(p) trials,
//! `Pr[Σ < d] ≤ e^(-τ)`.
//! Lemma 2: for independent geometrics,
//! `Pr[Σ X_i ≥ 2μ + 4 ln(1/ε)/p_min] ≤ ε`.
//!
//! Monte-Carlo estimates of both tails next to their analytic bounds;
//! empirical ≤ bound in every row (asserted).

use kbcast::analysis::{
    bernoulli_tail_empirical, geometric_tail_empirical, lemma1_trials, lemma2_threshold,
};
use kbcast_bench::table::{f3, Table};
use kbcast_bench::Scale;
use radio_net::rng;

fn main() {
    let scale = Scale::from_env();
    let samples = scale.pick(2_000, 20_000);
    let mut r = rng::stream(42, rng::salts::ANALYSIS);

    println!("E11a: Lemma 1 — Pr[Σ Bernoulli(p) < d] at r = ⌊(3d+2τ)/p⌋, {samples} samples/row");
    println!();
    let mut t = Table::new(&["p", "d", "τ", "r", "empirical", "bound e^-τ"]);
    for (p, d, tau) in [
        (0.5, 4.0, 1.0),
        (0.5, 8.0, 2.0),
        (0.2, 2.0, 2.0),
        (0.2, 10.0, 3.0),
        (0.8, 20.0, 1.0),
    ] {
        let trials = lemma1_trials(p, d, tau);
        let emp = bernoulli_tail_empirical(p, d, trials, samples, &mut r);
        let bound = (-tau).exp();
        assert!(
            emp <= bound + 3.0 / (samples as f64).sqrt(),
            "Lemma 1 violated"
        );
        t.row(&[
            format!("{p}"),
            format!("{d}"),
            format!("{tau}"),
            trials.to_string(),
            f3(emp),
            f3(bound),
        ]);
    }
    t.print();
    println!();

    println!("E11b: Lemma 2 — Pr[Σ Geometric(p_i) ≥ 2μ + 4ln(1/ε)/p_min], {samples} samples/row");
    println!();
    let mut t2 = Table::new(&["variables", "ε", "threshold t", "empirical", "bound ε"]);
    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("8 × p=0.5", vec![0.5; 8]),
        ("16 × p=0.25", vec![0.25; 16]),
        (
            "rank chain w=10 (p_i = 1 - 2^(i-1)/2^10)",
            (1..=10u32)
                .map(|i| 1.0 - f64::from(1u32 << (i - 1)) / 1024.0)
                .collect(),
        ),
    ];
    for (name, ps) in cases {
        for eps in [0.1, 0.01] {
            let thr = lemma2_threshold(&ps, eps);
            let emp = geometric_tail_empirical(&ps, thr, samples, &mut r);
            assert!(
                emp <= eps + 3.0 / (samples as f64).sqrt(),
                "Lemma 2 violated"
            );
            t2.row(&[
                name.to_string(),
                format!("{eps}"),
                format!("{thr:.1}"),
                f3(emp),
                f3(eps),
            ]);
        }
    }
    t2.print();
    println!();
    println!("claim check: empirical ≤ bound in every row (asserted). The rank-chain case is");
    println!("the exact argument of the paper's Lemma 3 proof (Appendix A, eq. 3-5).");
}
