//! **E1 — Amortized rounds per packet (Theorem 2 headline).**
//!
//! Paper claim: the coded algorithm delivers in amortized `O(logΔ)`
//! rounds per packet, versus `O(log n·logΔ)` for BII — so as `k` grows,
//! the coded amortized cost flattens to a constant independent of `n`,
//! while BII's flattens to a constant `Θ(log n)` times larger.
//!
//! This binary sweeps `k` at fixed `n` on the standard G(n, p) family
//! and prints amortized rounds per packet for the coded algorithm, the
//! uncoded Stage 4 ablation and the BII baseline, plus each curve's
//! asymptote estimate (the last point) and the coded-vs-BII ratio.

use kbcast_bench::sweep::{gnp_standard, measure, Algo};
use kbcast_bench::table::{f1, Table};
use kbcast_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(128, 256);
    let seeds = 2;
    let ks: Vec<usize> = scale.pick(vec![32, 128, 512], vec![32, 96, 256, 768, 2048]);
    let topo = gnp_standard(n);
    let probe = topo.build(0).expect("topology");
    println!(
        "E1: amortized rounds/packet, {} (n={n}, D={}, Δ={}), {} seeds/point",
        topo,
        probe.diameter().unwrap(),
        probe.max_degree(),
        seeds
    );
    println!();

    let mut t = Table::new(&["k", "coded", "uncoded", "bii", "bii/coded", "ok(c/u/b)"]);
    let mut last = None;
    for &k in &ks {
        let c = measure(Algo::Coded, &topo, k, seeds);
        let u = measure(Algo::Uncoded, &topo, k, seeds);
        let b = measure(Algo::Bii, &topo, k, seeds);
        t.row(&[
            k.to_string(),
            f1(c.amortized),
            f1(u.amortized),
            f1(b.amortized),
            f1(b.amortized / c.amortized.max(1e-9)),
            format!("{}/{}/{}", c.successes, u.successes, b.successes),
        ]);
        last = Some((c.amortized, u.amortized, b.amortized));
    }
    t.print();
    if let Some((c, u, b)) = last {
        println!();
        println!(
            "asymptote estimates (largest k): coded {:.1}, uncoded {:.1}, bii {:.1}",
            c, u, b
        );
        println!(
            "shape check: coded flat near c·logΔ; uncoded and bii carry the extra log n factor \
             (uncoded/coded = {:.2}, bii/coded = {:.2}; log n = {})",
            u / c,
            b / c,
            protocols::timing::log_n(n)
        );
    }
}
