//! **E17 (extension) — degradation curves under injected faults.**
//!
//! Beyond the paper (clean channel, collision-only losses): sweeps the
//! `radio_net::faults` models — i.i.d. loss, bursty Gilbert–Elliott
//! per-edge loss, seeded crash/recover schedules, a budgeted
//! adversarial jammer and wake-up corruption — against all three
//! protocols (the paper's coded algorithm, the BII baseline and the
//! dynamic-arrival extension) and records how the w.h.p. guarantees
//! degrade: success rate, rounds-to-completion inflation, residual
//! unreached packet mass, and (for the coded protocol) which stage the
//! fault-lost receptions landed in.
//!
//! Expected shapes (see EXPERIMENTS.md §E17): *graceful* rounds
//! inflation under moderate loss — the protocol's self-correcting
//! machinery absorbs it — versus a *cliff* under targeted jamming and
//! unrecovered crashes, which starve specific one-shot stages rather
//! than thinning every reception uniformly.
//!
//! Output: a table to stdout and `results/E17_faults.json` (redirect
//! with `KB_E17_OUT`; `scripts/check.sh` runs the quick grid16×16
//! configuration as a smoke stage). Everything is deterministic in the
//! fixed seed range — same binary, same scale, same JSON, bit for bit.

use std::fmt::Write as _;

use kbcast::baseline::BiiProtocol;
use kbcast::dynamic::{Arrival, DynamicProtocol};
use kbcast::runner::{CodedProtocol, RunOptions, StageFaults, Workload};
use kbcast::session::{run_protocol_on_graph_with_faults, SessionReport};
use kbcast_bench::parallel::par_map_indexed;
use kbcast_bench::session::{sweep_protocol, SweepSpec};
use kbcast_bench::stats::median;
use kbcast_bench::table::{f3, Table};
use kbcast_bench::{verify_from_env, Scale};
use radio_net::faults::FaultSpec;
use radio_net::stats::SimStats;
use radio_net::topology::Topology;

/// Everything the table and the JSON need from one protocol × fault
/// sweep.
struct Entry {
    fault: String,
    protocol: &'static str,
    ok: u64,
    seeds: u64,
    median_rounds: f64,
    mean_delivered: f64,
    lost_receptions: u64,
    stage_faults: Option<StageFaults>,
}

fn lost(stats: &SimStats) -> u64 {
    stats.dropped + stats.jammed + stats.crashed_rx + stats.wakeups_suppressed
}

fn summarize<M>(
    fault: &FaultSpec,
    protocol: &'static str,
    reports: &[SessionReport<M>],
    stage_faults: Option<StageFaults>,
) -> Entry {
    let ok = reports.iter().filter(|r| r.success).count() as u64;
    #[allow(clippy::cast_precision_loss)]
    let rounds: Vec<f64> = reports
        .iter()
        .filter(|r| r.success)
        .map(|r| r.rounds_total as f64)
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let mean_delivered =
        reports.iter().map(|r| r.delivered_fraction).sum::<f64>() / reports.len().max(1) as f64;
    Entry {
        fault: fault.label(),
        protocol,
        ok,
        seeds: reports.len() as u64,
        median_rounds: median(&rounds),
        mean_delivered,
        lost_receptions: reports.iter().map(|r| lost(&r.stats)).sum(),
        stage_faults,
    }
}

/// The dynamic-arrival sweep is not expressible as a [`SweepSpec`]
/// (arrivals are injected mid-session), so it fans its seeds out by
/// hand through the same faulted session driver.
fn sweep_dynamic(
    topo: &Topology,
    seeds: u64,
    fault: &FaultSpec,
) -> Vec<SessionReport<kbcast::dynamic::DynamicMeta>> {
    par_map_indexed(
        usize::try_from(seeds).expect("seed count fits usize"),
        |i| {
            let seed = i as u64;
            let graph = topo.build(seed).expect("topology builds");
            let n = graph.len();
            // A round-0 wave (wakes the network, elects the leader) plus a
            // late wave that must ride a subsequent batch.
            let mut arrivals: Vec<Arrival> = (0..4)
                .map(|j| Arrival {
                    round: 0,
                    node: (j * 3) % n,
                    payload: vec![0, j as u8],
                })
                .collect();
            arrivals.extend((0..4).map(|j| Arrival {
                round: 1500,
                node: (j * 7 + 1) % n,
                payload: vec![1, j as u8],
            }));
            let mut initial: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
            for a in &arrivals {
                if a.round == 0 {
                    initial[a.node].push(a.payload.clone());
                }
            }
            let workload = Workload::new(initial);
            let protocol = DynamicProtocol {
                arrivals: &arrivals,
                config: None,
                horizon: 150_000,
            };
            let faults = fault.build(n, seed).expect("fault spec is valid");
            let options = RunOptions {
                verify: verify_from_env(),
                ..RunOptions::default()
            };
            run_protocol_on_graph_with_faults(&protocol, graph, &workload, seed, options, faults)
                .expect("session runs")
        },
    )
}

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.pick(2u64, 5);
    let (topo, k) = if matches!(scale, Scale::Quick) {
        (Topology::Grid2d { rows: 16, cols: 16 }, 16usize)
    } else {
        (Topology::Gnp { n: 64, p: 0.13 }, 64usize)
    };

    // ≥ 4 fault families; the full scale sweeps each family's knob.
    let specs: Vec<&str> = if matches!(scale, Scale::Quick) {
        vec![
            "none",
            "uniform:rate=0.15",
            "ge:p_bad=0.01,p_good=0.1,loss_good=0,loss_bad=0.9",
            "crash:frac=0.25,from=0,until=2000,down=1000",
            "jam:budget=200",
            "wakeup:rate=0.5",
        ]
    } else {
        vec![
            "none",
            "uniform:rate=0.05",
            "uniform:rate=0.15",
            "uniform:rate=0.3",
            "ge:p_bad=0.002,p_good=0.1,loss_good=0,loss_bad=0.9",
            "ge:p_bad=0.01,p_good=0.1,loss_good=0,loss_bad=0.9",
            "ge:p_bad=0.05,p_good=0.1,loss_good=0,loss_bad=0.9",
            "crash:frac=0.1,from=0,until=4000",
            "crash:frac=0.25,from=0,until=4000",
            "crash:frac=0.25,from=0,until=4000,down=2000",
            "crash:frac=0.5,from=0,until=4000",
            "jam:budget=100",
            "jam:budget=1000",
            "jam:budget=10000",
            "wakeup:rate=0.2",
            "wakeup:rate=0.5",
            "wakeup:rate=0.9",
            "uniform:rate=0.05+crash:frac=0.1,from=0,until=4000",
        ]
    };

    println!("E17 (extension): protocol degradation under injected fault models");
    println!("({topo}, k={k}, {seeds} seeds per protocol x fault; caps = default round caps)");
    println!();

    let mut entries: Vec<Entry> = Vec::new();
    for s in &specs {
        let fault: FaultSpec = s.parse().expect("experiment fault specs parse");
        fault.build(16, 0).expect("experiment fault specs validate");

        let mut spec = SweepSpec::new(&topo, k, seeds);
        spec.options.verify = verify_from_env();
        let is_clean = fault.is_none();
        spec.faults = if is_clean { None } else { Some(&fault) };

        let coded = sweep_protocol(&CodedProtocol::default(), &spec);
        let mut stage_faults = StageFaults::default();
        for r in &coded {
            let s = r.meta.stage_faults;
            stage_faults.leader += s.leader;
            stage_faults.bfs += s.bfs;
            stage_faults.collect += s.collect;
            stage_faults.disseminate += s.disseminate;
        }
        entries.push(summarize(&fault, "coded", &coded, Some(stage_faults)));

        let bii = sweep_protocol(&BiiProtocol::default(), &spec);
        entries.push(summarize(&fault, "bii", &bii, None));

        let dynamic = sweep_dynamic(&topo, seeds, &fault);
        entries.push(summarize(&fault, "dynamic", &dynamic, None));
    }

    let mut t = Table::new(&[
        "fault",
        "protocol",
        "success",
        "median rounds",
        "delivered",
        "fault-lost rx",
    ]);
    for e in &entries {
        t.row(&[
            e.fault.clone(),
            e.protocol.to_string(),
            format!("{}/{}", e.ok, e.seeds),
            format!("{:.0}", e.median_rounds),
            f3(e.mean_delivered),
            format!("{}", e.lost_receptions),
        ]);
    }
    t.print();
    println!();
    println!("shape check: uniform/bursty loss inflate rounds gracefully before success");
    println!("decays; unrecovered crashes cap delivered_fraction at the surviving mass;");
    println!("targeted jamming and heavy wake-up corruption are cliffs — they starve one-");
    println!("shot stages (election, BFS labeling, first wake-ups) outright.");

    // Deterministic JSON (no timestamps): the committed results file
    // must be reproducible bit-for-bit from a fixed seed range.
    let mut json_entries = Vec::new();
    for e in &entries {
        let mut j = String::new();
        write!(
            j,
            "    {{\"fault\": \"{}\", \"protocol\": \"{}\", \"success\": {}, \"seeds\": {}, \
             \"median_rounds\": {:.1}, \"mean_delivered\": {:.6}, \"lost_receptions\": {}",
            e.fault,
            e.protocol,
            e.ok,
            e.seeds,
            e.median_rounds,
            e.mean_delivered,
            e.lost_receptions
        )
        .expect("write to string");
        if let Some(s) = e.stage_faults {
            write!(
                j,
                ", \"stage_faults\": {{\"leader\": {}, \"bfs\": {}, \"collect\": {}, \
                 \"disseminate\": {}}}",
                s.leader, s.bfs, s.collect, s.disseminate
            )
            .expect("write to string");
        }
        j.push('}');
        json_entries.push(j);
    }
    let json = format!(
        "{{\n  \"experiment\": \"E17_faults\",\n  \"topology\": \"{topo}\",\n  \"k\": {k},\n  \
         \"seeds\": {seeds},\n  \"entries\": [\n{}\n  ]\n}}\n",
        json_entries.join(",\n")
    );
    let path =
        std::env::var("KB_E17_OUT").unwrap_or_else(|_| "results/E17_faults.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e} (printing instead)\n{json}"),
    }
}
