//! **E22 (extension) — broadcast under dynamic topology.**
//!
//! Beyond the paper (whose network is frozen for the whole execution):
//! sweeps the four protocol families — the paper's coded algorithm,
//! the BII flooding baseline, the dynamic batch-pipelining variant,
//! and the GHK collision-detection broadcast — across a churn grid on
//! the same topology zoo:
//!
//! * a **rate ladder** of per-round edge churn (`edge:rho=...`), the
//!   degradation axis: every live edge flaps down with probability ρ
//!   each round and heals back at a fixed rate, so raising ρ thins the
//!   effective graph without ever adding capacity;
//! * one **random-waypoint mobility** configuration (`waypoint:...`),
//!   where the unit-disk graph is re-derived from moving positions; and
//! * one **periodic partition/heal** window (`partition:...`), which
//!   holds two bisection halves apart for part of every cycle.
//!
//! Expected shapes (see EXPERIMENTS.md §E22): delivered mass is
//! non-increasing along the edge-rho ladder — churn only removes
//! edges, so the curve can plateau at 1.0 under gentle flap rates but
//! can never improve; median rounds grow with ρ; the partition window
//! is the harshest model for the round-capped coded pipeline (a split
//! that outlives the cap reads as failure) while the flooders recover
//! as soon as the window heals.
//!
//! With `KB_VERIFY=1` every session replays through the churn-aware
//! [`radio_net::verify::ModelChecker`] replica; any violation aborts
//! the sweep with the offending seed instead of contributing a
//! silently-wrong data point.
//!
//! Output: a table to stdout and `results/E22_churn.json` (redirect
//! with `KB_E22_OUT`; `scripts/check.sh` runs the quick grid8×8
//! configuration as its churn-smoke stage). Deterministic in the fixed
//! seed range — same binary, same scale, same JSON, bit for bit.

use std::fmt::Write as _;

use kbcast::baseline::BiiProtocol;
use kbcast::dynamic::{Arrival, DynamicProtocol};
use kbcast::ghk::GhkProtocol;
use kbcast::runner::{CodedProtocol, RunOptions, Workload};
use kbcast::session::{run_protocol_on_graph, SessionReport};
use kbcast_bench::session::{sweep_protocol, SweepSpec};
use kbcast_bench::stats::median;
use kbcast_bench::table::{f3, Table};
use kbcast_bench::{verify_from_env, Scale};
use radio_net::dyntopo::{ChurnSpec, PartitionWindow};
use radio_net::topology::Topology;

/// Uniform round cap: bounds the partition rows (a window that
/// outlives the cap is a legitimate failure outcome) without touching
/// any run that completes — every clean protocol finishes well below
/// it on the zoo sizes.
const CAP: u64 = 60_000;

/// One protocol × topology × churn row.
struct Entry {
    topology: String,
    churn: String,
    protocol: &'static str,
    ok: u64,
    seeds: u64,
    median_rounds: f64,
    mean_delivered: f64,
}

/// The flattened per-seed observation shared by the sweep-driven and
/// hand-driven protocols.
struct Obs {
    success: bool,
    rounds: u64,
    delivered: f64,
}

fn obs<M>(r: &SessionReport<M>) -> Obs {
    Obs {
        success: r.success,
        rounds: r.rounds_total,
        delivered: r.delivered_fraction,
    }
}

fn summarize(topo: &Topology, churn: &ChurnSpec, protocol: &'static str, runs: &[Obs]) -> Entry {
    let ok = runs.iter().filter(|r| r.success).count() as u64;
    #[allow(clippy::cast_precision_loss)]
    let rounds: Vec<f64> = runs
        .iter()
        .filter(|r| r.success)
        .map(|r| r.rounds as f64)
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let mean_delivered = runs.iter().map(|r| r.delivered).sum::<f64>() / runs.len().max(1) as f64;
    Entry {
        topology: topo.to_string(),
        churn: churn.label(),
        protocol,
        ok,
        seeds: runs.len() as u64,
        median_rounds: median(&rounds),
        mean_delivered,
    }
}

/// The dynamic variant does not fit `sweep_protocol` (its protocol
/// value borrows a per-seed arrival schedule), so it gets the same
/// per-seed fan-out by hand: `k` packets, half present at round 0 to
/// wake the network, the rest injected mid-session through the
/// session-control seam — churn active underneath the whole time.
fn dynamic_runs(topo: &Topology, k: usize, seeds: u64, options: RunOptions) -> Vec<Obs> {
    (0..seeds)
        .map(|seed| {
            let graph = topo.build(seed).expect("topology builds");
            let n = graph.len();
            let arrivals: Vec<Arrival> = (0..k)
                .map(|i| Arrival {
                    round: if i < k.div_ceil(2) { 0 } else { 200 * i as u64 },
                    node: (i * 7 + seed as usize) % n,
                    payload: vec![0xE2, i as u8, seed as u8],
                })
                .collect();
            let mut initial: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
            for a in arrivals.iter().filter(|a| a.round == 0) {
                initial[a.node].push(a.payload.clone());
            }
            let protocol = DynamicProtocol {
                arrivals: &arrivals,
                config: None,
                horizon: CAP,
            };
            let r = run_protocol_on_graph(&protocol, graph, &Workload::new(initial), seed, options)
                .expect("session runs");
            obs(&r)
        })
        .collect()
}

/// The churn grid: a clean baseline, the edge-rho degradation ladder,
/// one mobility model, one partition/heal schedule.
fn churn_grid() -> Vec<ChurnSpec> {
    let edge = |rho| ChurnSpec::Edge { rho, heal: 0.25 };
    vec![
        ChurnSpec::None,
        edge(0.005),
        edge(0.02),
        edge(0.08),
        ChurnSpec::Waypoint {
            radius: 0.45,
            speed: 0.01,
        },
        ChurnSpec::Partition(PartitionWindow {
            split_at: 100,
            heal_at: 400,
            period: Some(800),
        }),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.pick(2u64, 5);
    let zoo: Vec<(Topology, usize)> = if matches!(scale, Scale::Quick) {
        vec![(Topology::Grid2d { rows: 8, cols: 8 }, 8usize)]
    } else {
        vec![
            (Topology::Grid2d { rows: 12, cols: 12 }, 12usize),
            (Topology::Gnp { n: 64, p: 0.13 }, 12usize),
        ]
    };
    let grid = churn_grid();

    println!("E22 (extension): broadcast under dynamic topology (churn/mobility/partition)");
    println!(
        "({} topologies, {} churn models, {seeds} seeds per protocol x topology x churn)",
        zoo.len(),
        grid.len()
    );
    println!();

    let mut entries: Vec<Entry> = Vec::new();
    for (topo, k) in &zoo {
        for churn in &grid {
            let mut spec = SweepSpec::new(topo, *k, seeds);
            spec.options.verify = verify_from_env();
            spec.options.max_rounds = Some(CAP);
            spec.options.churn = *churn;

            let coded = sweep_protocol(&CodedProtocol::default(), &spec);
            entries.push(summarize(
                topo,
                churn,
                "coded",
                &coded.iter().map(obs).collect::<Vec<_>>(),
            ));

            let bii = sweep_protocol(&BiiProtocol::default(), &spec);
            entries.push(summarize(
                topo,
                churn,
                "bii",
                &bii.iter().map(obs).collect::<Vec<_>>(),
            ));

            let ghk = sweep_protocol(&GhkProtocol::default(), &spec);
            entries.push(summarize(
                topo,
                churn,
                "ghk",
                &ghk.iter().map(obs).collect::<Vec<_>>(),
            ));

            let dynamic = dynamic_runs(topo, *k, seeds, spec.options);
            entries.push(summarize(topo, churn, "dynamic", &dynamic));
        }
    }

    let mut t = Table::new(&[
        "topology",
        "churn",
        "protocol",
        "success",
        "median rounds",
        "delivered",
    ]);
    for e in &entries {
        t.row(&[
            e.topology.clone(),
            e.churn.clone(),
            e.protocol.to_string(),
            format!("{}/{}", e.ok, e.seeds),
            format!("{:.0}", e.median_rounds),
            f3(e.mean_delivered),
        ]);
    }
    t.print();
    println!();

    // Degradation shape: along the edge-rho ladder (none is rho = 0)
    // delivered mass must be non-increasing per protocol on every
    // topology — edge churn only removes edges, never adds capacity.
    // A small epsilon absorbs seed noise at quick scale.
    let ladder = [
        "none",
        "edge:rho=0.005,heal=0.25",
        "edge:rho=0.02,heal=0.25",
        "edge:rho=0.08,heal=0.25",
    ];
    let mut all_monotone = true;
    for (topo, _) in &zoo {
        let tname = topo.to_string();
        for protocol in ["coded", "bii", "ghk", "dynamic"] {
            let series: Vec<f64> = ladder
                .iter()
                .filter_map(|label| {
                    entries
                        .iter()
                        .find(|e| {
                            e.topology == tname && e.protocol == protocol && e.churn == *label
                        })
                        .map(|e| e.mean_delivered)
                })
                .collect();
            let monotone = series.windows(2).all(|w| w[1] <= w[0] + 0.02);
            all_monotone &= monotone;
            let pretty: Vec<String> = series.iter().map(|v| format!("{v:.3}")).collect();
            println!(
                "degradation {tname} {protocol}: delivered [{}] monotone={monotone}",
                pretty.join(", ")
            );
        }
    }
    println!("degradation monotone overall: {all_monotone}");
    println!();
    println!("shape check: delivered mass never improves as edge-rho rises (churn only");
    println!("removes edges); median rounds grow with rho; the periodic partition is");
    println!("harshest for the round-capped coded pipeline (a split outliving the cap is");
    println!("a failure outcome) while the flooders recover once the window heals.");

    // Deterministic JSON (no timestamps): reproducible bit-for-bit
    // from the fixed seed range.
    let mut json_entries = Vec::new();
    for e in &entries {
        let mut j = String::new();
        write!(
            j,
            "    {{\"topology\": \"{}\", \"churn\": \"{}\", \"protocol\": \"{}\", \
             \"success\": {}, \"seeds\": {}, \"median_rounds\": {:.1}, \
             \"mean_delivered\": {:.6}}}",
            e.topology, e.churn, e.protocol, e.ok, e.seeds, e.median_rounds, e.mean_delivered
        )
        .expect("write to string");
        json_entries.push(j);
    }
    let json = format!(
        "{{\n  \"experiment\": \"E22_churn\",\n  \"seeds\": {seeds},\n  \
         \"monotone_degradation\": {all_monotone},\n  \"entries\": [\n{}\n  ]\n}}\n",
        json_entries.join(",\n")
    );
    let path = std::env::var("KB_E22_OUT").unwrap_or_else(|_| "results/E22_churn.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e} (printing instead)\n{json}"),
    }
}
