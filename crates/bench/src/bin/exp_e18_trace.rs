//! **E18 (extension) — traced stage breakdown of all three protocols.**
//!
//! Runs the paper's coded protocol, the BII baseline and the
//! dynamic-arrival extension with [`kbcast::runner::RunOptions::trace`]
//! turned on, and aggregates the per-round trace samples into a
//! per-stage breakdown: rounds spent, transmissions, receptions,
//! collisions and reception rate per stage, plus a per-packet
//! amortized-round histogram across seeds. This supersedes the
//! eyeballed stage table of E5 — the numbers here come from the
//! engine's own round events, not from re-deriving stage boundaries
//! offline.
//!
//! A structural self-check is asserted before anything is written: for
//! every protocol the merged per-stage round totals must sum exactly to
//! the merged total rounds (stages partition the run; nothing is
//! counted twice or dropped).
//!
//! Output: a table to stdout and `results/E18_trace.json` (redirect
//! with `KB_E18_OUT`). With `KB_TRACE=1` the binary additionally dumps
//! the seed-0 coded run's raw artifacts: the JSONL event stream
//! (`KB_E18_JSONL`, default `results/E18_trace.jsonl`) and the
//! Chrome-trace span file (`KB_E18_CHROME`, default
//! `results/E18_trace_chrome.json`) — load the latter in Perfetto /
//! `chrome://tracing` to see the stage spans on a timeline.
//! Deterministic in the fixed seed range: same binary, same scale,
//! same JSON, bit for bit.

use std::fmt::Write as _;

use kbcast::baseline::BiiProtocol;
use kbcast::dynamic::{Arrival, DynamicProtocol};
use kbcast::runner::{CodedProtocol, RunOptions, Workload};
use kbcast::session::{run_protocol_on_graph, SessionReport};
use kbcast_bench::parallel::par_map_indexed;
use kbcast_bench::session::{merge_traces, sweep_protocol, SweepSpec};
use kbcast_bench::stats::median;
use kbcast_bench::table::Table;
use kbcast_bench::{trace_from_env, verify_from_env, Scale};
use radio_net::topology::Topology;
use radio_net::trace::TraceSummary;

/// One protocol's traced sweep, reduced to what the table, the JSON
/// and the self-check need.
struct Entry {
    protocol: &'static str,
    summary: TraceSummary,
    /// `rounds_total / packets` for each successful seed, seed order.
    amortized: Vec<f64>,
    /// Seed-0 per-stage closing gauge (coded: summed GF(2) rank).
    stage_gauge: Vec<(String, Option<u64>)>,
}

fn reduce<M>(
    protocol: &'static str,
    reports: &[SessionReport<M>],
    packets_per_run: usize,
) -> Entry {
    #[allow(clippy::cast_precision_loss)]
    let amortized: Vec<f64> = reports
        .iter()
        .filter(|r| r.success)
        .map(|r| r.rounds_total as f64 / packets_per_run.max(1) as f64)
        .collect();
    let stage_gauge = reports
        .first()
        .and_then(|r| r.trace.as_ref())
        .map(|t| {
            t.stages
                .iter()
                .map(|s| (s.name.clone(), s.gauge_end))
                .collect()
        })
        .unwrap_or_default();
    Entry {
        protocol,
        summary: merge_traces(reports),
        amortized,
        stage_gauge,
    }
}

/// The dynamic-arrival sweep injects packets mid-session, which a
/// [`SweepSpec`] cannot express; fan the seeds out by hand (same shape
/// as E17's dynamic sweep, with tracing on).
fn sweep_dynamic(
    topo: &Topology,
    seeds: u64,
    options: RunOptions,
) -> Vec<SessionReport<kbcast::dynamic::DynamicMeta>> {
    par_map_indexed(
        usize::try_from(seeds).expect("seed count fits usize"),
        |i| {
            let seed = i as u64;
            let graph = topo.build(seed).expect("topology builds");
            let n = graph.len();
            let mut arrivals: Vec<Arrival> = (0..4)
                .map(|j| Arrival {
                    round: 0,
                    node: (j * 3) % n,
                    payload: vec![0, j as u8],
                })
                .collect();
            arrivals.extend((0..4).map(|j| Arrival {
                round: 1500,
                node: (j * 7 + 1) % n,
                payload: vec![1, j as u8],
            }));
            let mut initial: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
            for a in &arrivals {
                if a.round == 0 {
                    initial[a.node].push(a.payload.clone());
                }
            }
            let workload = Workload::new(initial);
            let protocol = DynamicProtocol {
                arrivals: &arrivals,
                config: None,
                horizon: 150_000,
            };
            run_protocol_on_graph(&protocol, graph, &workload, seed, options).expect("session runs")
        },
    )
}

/// Fixed-width ASCII histogram of the amortized rounds-per-packet
/// values (deterministic: buckets derive only from the data).
fn print_histogram(values: &[f64]) {
    if values.is_empty() {
        println!("    (no successful runs)");
        return;
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min).floor();
    let hi = values
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .ceil()
        .max(lo + 1.0);
    const BUCKETS: usize = 6;
    let width = (hi - lo) / BUCKETS as f64;
    let mut counts = [0usize; BUCKETS];
    for &v in values {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let b = (((v - lo) / width) as usize).min(BUCKETS - 1);
        counts[b] += 1;
    }
    for (b, &c) in counts.iter().enumerate() {
        #[allow(clippy::cast_precision_loss)]
        let (a, z) = (lo + b as f64 * width, lo + (b + 1) as f64 * width);
        println!("    [{a:8.1}, {z:8.1})  {:<12} {c}", "#".repeat(c.min(12)));
    }
}

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.pick(2u64, 5);
    let (topo, k) = if matches!(scale, Scale::Quick) {
        (Topology::Grid2d { rows: 16, cols: 16 }, 16usize)
    } else {
        (Topology::Gnp { n: 64, p: 0.13 }, 64usize)
    };
    let options = RunOptions {
        trace: true,
        verify: verify_from_env(),
        ..RunOptions::default()
    };

    println!("E18 (extension): traced per-stage breakdown (supersedes the eyeballed E5 table)");
    println!("({topo}, k={k}, {seeds} seeds per protocol; trace ring cap 4096)");
    println!();

    let mut spec = SweepSpec::new(&topo, k, seeds);
    spec.options = options;
    let coded_reports = sweep_protocol(&CodedProtocol::default(), &spec);
    let bii_reports = sweep_protocol(&BiiProtocol::default(), &spec);
    let dynamic_reports = sweep_dynamic(&topo, seeds, options);

    let entries = [
        reduce("coded", &coded_reports, k),
        reduce("bii", &bii_reports, k),
        // The dynamic workload is 8 arrivals (4 at round 0, 4 late).
        reduce("dynamic", &dynamic_reports, 8),
    ];

    // Self-check: the stage probe partitions every round into exactly
    // one stage, so per-stage round totals must sum to total rounds.
    for e in &entries {
        let stage_rounds: u64 = e.summary.stages.iter().map(|s| s.rounds).sum();
        assert_eq!(
            stage_rounds, e.summary.rounds,
            "{}: per-stage rounds must partition the run",
            e.protocol
        );
    }

    let mut t = Table::new(&[
        "protocol",
        "stage",
        "rounds",
        "share",
        "tx",
        "rx",
        "collisions",
        "rx/round",
    ]);
    for e in &entries {
        for s in &e.summary.stages {
            #[allow(clippy::cast_precision_loss)]
            let share = s.rounds as f64 / e.summary.rounds.max(1) as f64;
            #[allow(clippy::cast_precision_loss)]
            let rx_rate = s.totals.receptions as f64 / s.rounds.max(1) as f64;
            t.row(&[
                e.protocol.to_string(),
                s.name.clone(),
                format!("{}", s.rounds),
                format!("{:.0}%", share * 100.0),
                format!("{}", s.totals.transmissions),
                format!("{}", s.totals.receptions),
                format!("{}", s.totals.collisions),
                format!("{rx_rate:.2}"),
            ]);
        }
    }
    t.print();

    println!();
    println!("amortized rounds per packet (successful seeds):");
    for e in &entries {
        println!("  {} (median {:.1}):", e.protocol, median(&e.amortized));
        print_histogram(&e.amortized);
    }

    // Deterministic JSON (no timestamps): the committed results file
    // must be reproducible bit-for-bit from the fixed seed range.
    let mut json_entries = Vec::new();
    for e in &entries {
        let mut j = String::new();
        let amortized = e
            .amortized
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
            .join(", ");
        let gauges = e
            .stage_gauge
            .iter()
            .map(|(name, g)| {
                format!(
                    "{{\"stage\": \"{name}\", \"gauge_end\": {}}}",
                    g.map_or_else(|| "null".to_string(), |v| v.to_string())
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        write!(
            j,
            "    {{\"protocol\": \"{}\", \"summary\": {}, \"median_amortized_rounds\": {:.2}, \
             \"amortized_rounds_per_packet\": [{amortized}], \"stage_gauge_seed0\": [{gauges}]}}",
            e.protocol,
            e.summary.to_json(),
            median(&e.amortized)
        )
        .expect("write to string");
        json_entries.push(j);
    }
    let json = format!(
        "{{\n  \"experiment\": \"E18_trace\",\n  \"topology\": \"{topo}\",\n  \"k\": {k},\n  \
         \"seeds\": {seeds},\n  \"entries\": [\n{}\n  ]\n}}\n",
        json_entries.join(",\n")
    );
    let path = std::env::var("KB_E18_OUT").unwrap_or_else(|_| "results/E18_trace.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e} (printing instead)\n{json}"),
    }

    // Raw artifacts (seed-0 coded run) on request: the JSONL event
    // stream for ad-hoc analysis and the Chrome-trace span file for
    // Perfetto / chrome://tracing.
    if trace_from_env() {
        if let Some(trace) = coded_reports.first().and_then(|r| r.trace.as_ref()) {
            let jsonl_path = std::env::var("KB_E18_JSONL")
                .unwrap_or_else(|_| "results/E18_trace.jsonl".to_string());
            match std::fs::write(&jsonl_path, trace.to_jsonl()) {
                Ok(()) => println!("wrote {jsonl_path}"),
                Err(e) => eprintln!("could not write {jsonl_path}: {e}"),
            }
            let chrome_path = std::env::var("KB_E18_CHROME")
                .unwrap_or_else(|_| "results/E18_trace_chrome.json".to_string());
            match std::fs::write(&chrome_path, trace.to_chrome_trace()) {
                Ok(()) => println!("wrote {chrome_path}"),
                Err(e) => eprintln!("could not write {chrome_path}: {e}"),
            }
        }
    }
}
