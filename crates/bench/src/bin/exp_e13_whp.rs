//! **E13 — "With high probability", as an assertion: Clopper–Pearson
//! check of the `O(k·logΔ + (D + log n)·log n·logΔ)` bound.**
//!
//! Every bound in the paper holds w.h.p. for "sufficiently large"
//! constants. Earlier revisions of this experiment printed a
//! success-rate table to be eyeballed; this version *checks* the claim
//! ([`kbcast_bench::whp`]):
//!
//! 1. A probe sweep per topology family calibrates the bound's hidden
//!    constant `C` (maximum observed `rounds / units`, ×1.5 margin).
//! 2. The main sweep then asserts that every seed both succeeds and
//!    finishes within `C · units`, and that the exact one-sided
//!    Clopper–Pearson lower bound on the per-seed success probability
//!    reaches the target at 95% confidence.
//!
//! Any miss prints the offending seeds and exits nonzero — the datum
//! backing every other experiment is now machine-checked. Set
//! `KB_VERIFY=1` to additionally run the online model/invariant
//! checkers inside every session.

use kbcast::runner::CodedProtocol;
use kbcast_bench::session::{probe, sweep_protocol, SweepSpec};
use kbcast_bench::whp::{calibrate_c, check_sweep};
use kbcast_bench::{verify_from_env, Scale};
use radio_net::topology::Topology;

const CONFIDENCE: f64 = 0.95;
const MARGIN: f64 = 1.5;

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.pick(25u64, 250);
    let probe_seeds = scale.pick(5u64, 20);
    let target = scale.pick(0.85, 0.985);
    let verify = verify_from_env();
    println!(
        "E13: w.h.p. bound check — {seeds} seeds per configuration, \
         target lower bound {target} at {:.0}% confidence{}",
        CONFIDENCE * 100.0,
        if verify { ", verify on" } else { "" }
    );
    println!();

    let configs: Vec<(String, Topology, usize)> = vec![
        ("gnp(64)".into(), Topology::Gnp { n: 64, p: 0.13 }, 128),
        ("gnp(256)".into(), Topology::Gnp { n: 256, p: 0.044 }, 256),
        (
            "grid(8x8)".into(),
            Topology::Grid2d { rows: 8, cols: 8 },
            128,
        ),
        ("rtree(64)".into(), Topology::RandomTree { n: 64 }, 64),
        ("star(64)".into(), Topology::Star { n: 64 }, 128),
        (
            "udg(64)".into(),
            Topology::UnitDisk { n: 64, radius: 0.3 },
            64,
        ),
        (
            "regular(64,6)".into(),
            Topology::RandomRegular { n: 64, d: 6 },
            128,
        ),
        ("path(32)".into(), Topology::Path { n: 32 }, 64),
    ];

    // Phase 1: calibrate one global constant across all families — the
    // paper's constant is universal, so the checker's must be too.
    let protocol = CodedProtocol::default();
    let mut probes = Vec::new();
    let mut probe_reports = Vec::new();
    for (_, topo, k) in &configs {
        let mut spec = SweepSpec::new(topo, *k, probe_seeds);
        spec.options.verify = verify;
        let net = probe(topo);
        let reports = sweep_protocol(&protocol, &spec);
        probe_reports.push((net, *k, reports));
    }
    for (net, k, reports) in &probe_reports {
        for r in reports {
            probes.push((*net, *k, r));
        }
    }
    let c = calibrate_c(&probes, MARGIN);
    println!("calibrated constant: C = {c:.2} (margin ×{MARGIN} over {probe_seeds}-seed probes)");
    println!();

    // Phase 2: assert, per family, failing loudly with the seed.
    let mut failed = false;
    for (name, topo, k) in &configs {
        let mut spec = SweepSpec::new(topo, *k, seeds);
        spec.options.verify = verify;
        let net = probe(topo);
        let reports = sweep_protocol(&protocol, &spec);
        match check_sweep(&reports, &net, *k, c, CONFIDENCE, target) {
            Ok(out) => println!(
                "ok   {name:<14} {}/{} good, lower bound {:.4}, headroom {:.0}%",
                out.good,
                out.trials,
                out.lower_bound,
                (1.0 - out.worst_ratio) * 100.0
            ),
            Err(fail) => {
                failed = true;
                println!("FAIL {name:<14}");
                print!("{fail}");
            }
        }
    }
    println!();
    if failed {
        println!("E13: FAILED — rerun the printed seeds to reproduce");
        std::process::exit(1);
    }
    println!("E13: all families within the calibrated bound at {CONFIDENCE:.2} confidence");
}
