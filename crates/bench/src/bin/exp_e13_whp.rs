//! **E13 — "With high probability", empirically: success rate of the
//! default constants across many seeds.**
//!
//! Every bound in the paper holds w.h.p. for "sufficiently large"
//! constants; the implementation's defaults (Config::for_network) were
//! calibrated so that end-to-end runs succeed across seeds and topology
//! families. This binary measures that success rate — it is the
//! reliability datum backing every other experiment.

use kbcast::runner::CodedProtocol;
use kbcast_bench::session::{sweep_protocol, SweepSpec};
use kbcast_bench::table::Table;
use kbcast_bench::Scale;
use radio_net::topology::Topology;

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.pick(10u64, 50);
    println!("E13: end-to-end success rate over {seeds} seeds per configuration");
    println!();

    let configs: Vec<(String, Topology, usize)> = vec![
        ("gnp(64)".into(), Topology::Gnp { n: 64, p: 0.13 }, 128),
        ("gnp(256)".into(), Topology::Gnp { n: 256, p: 0.044 }, 256),
        (
            "grid(8x8)".into(),
            Topology::Grid2d { rows: 8, cols: 8 },
            128,
        ),
        ("rtree(64)".into(), Topology::RandomTree { n: 64 }, 64),
        ("star(64)".into(), Topology::Star { n: 64 }, 128),
        (
            "udg(64)".into(),
            Topology::UnitDisk { n: 64, radius: 0.3 },
            64,
        ),
        (
            "regular(64,6)".into(),
            Topology::RandomRegular { n: 64, d: 6 },
            128,
        ),
        ("path(32)".into(), Topology::Path { n: 32 }, 64),
    ];

    let mut t = Table::new(&["topology", "k", "successes", "rate"]);
    let mut total_ok = 0u64;
    let mut total = 0u64;
    for (name, topo, k) in &configs {
        let reports = sweep_protocol(&CodedProtocol::default(), &SweepSpec::new(topo, *k, seeds));
        let ok = reports.iter().filter(|r| r.success).count() as u64;
        total_ok += ok;
        total += seeds;
        #[allow(clippy::cast_precision_loss)]
        t.row(&[
            name.clone(),
            k.to_string(),
            format!("{ok}/{seeds}"),
            format!("{:.3}", ok as f64 / seeds as f64),
        ]);
    }
    t.print();
    println!();
    #[allow(clippy::cast_precision_loss)]
    {
        println!(
            "overall: {total_ok}/{total} = {:.4} (the defaults' empirical 'w.h.p.')",
            total_ok as f64 / total as f64
        );
    }
}
