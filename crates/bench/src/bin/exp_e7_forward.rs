//! **E7 — Lemma 6: one `FORWARD` phase delivers a whole group to the
//! next ring w.h.p.**
//!
//! Paper claim: if every node of ring `d` knows the `⌈log n⌉`-packet
//! group and transmits random GF(2) combinations with the Decay
//! schedule, every ring-`d+1` node receives `O(log n)` rows in
//! `O(log n)` epochs and decodes (full rank by Lemma 3).
//!
//! The micro-benchmark isolates one transmitter/receiver layer
//! (complete bipartite) and sweeps the epoch budget: decoded fraction
//! should cross ~1 once receptions exceed the group size by a small
//! margin, and the default `c_fwd·(m+4)` budget should sit comfortably
//! above that point.

use kbcast::Config;
use kbcast_bench::micro::forward_once;
use kbcast_bench::table::{f1, f3, Table};
use kbcast_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let reps = scale.pick(5, 20);
    let m = 8; // group size (⌈log n⌉ for n = 256)
    let payload = 32;
    println!(
        "E7: FORWARD micro-benchmark — decoded fraction vs epoch budget \
         (group m={m}, {reps} reps/cell, transmitter counts t swept per row)"
    );
    println!();

    let mut t = Table::new(&["epochs", "t=1", "t=4", "t=16", "mean rx (t=4)"]);
    for epochs in [4usize, 8, 16, 24, 32, 48, 64, 96] {
        let mut cells = Vec::new();
        let mut mean_rx = 0.0;
        for &tx in &[1usize, 4, 16] {
            let mut frac = 0.0;
            let mut rx = 0.0;
            for rep in 0..reps {
                let out = forward_once(tx, 8, m, payload, epochs, 16, rep as u64);
                frac += out.decoded_fraction;
                rx += out.mean_receptions;
            }
            #[allow(clippy::cast_precision_loss)]
            {
                frac /= reps as f64;
                rx /= reps as f64;
            }
            cells.push(frac);
            if tx == 4 {
                mean_rx = rx;
            }
        }
        t.row(&[
            epochs.to_string(),
            f3(cells[0]),
            f3(cells[1]),
            f3(cells[2]),
            f1(mean_rx),
        ]);
    }
    t.print();
    println!();
    let cfg = Config::for_network(256, 8, 16);
    let default_epochs = cfg.c_fwd * (cfg.group_size() + 4);
    println!(
        "default budget at n=256: c_fwd·(m+4) = {default_epochs} epochs — the decoded \
         fraction should be 1.000 well before that row."
    );
}
