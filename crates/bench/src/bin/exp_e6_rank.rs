//! **E6 — Lemma 3: full-rank probability of random binary matrices.**
//!
//! Paper claim: an `l × w` matrix with i.i.d. uniform GF(2) entries has
//! full column rank with probability ≥ 1 - ε once
//! `l ≥ 2(w+2) + 8·ln(1/ε)`. This is the correctness engine of the
//! Stage 4 decoder. The Monte-Carlo sweep shows (a) the bound holds and
//! (b) it is conservative: in practice `w + Θ(1)` rows already suffice.

use gf2::matrix::{lemma3_row_threshold, BitMatrix};
use kbcast_bench::table::{f3, Table};
use kbcast_bench::Scale;
use radio_net::rng;

fn main() {
    let scale = Scale::from_env();
    let trials = scale.pick(500, 5_000);
    let ws: Vec<usize> = vec![4, 8, 16, 32];
    println!("E6: Pr[full column rank] of random l x w GF(2) matrices, {trials} trials/cell");
    println!();

    let mut t = Table::new(&[
        "w",
        "l=w",
        "l=w+2",
        "l=w+5",
        "l=w+10",
        "lemma3 l (ε=.01)",
        "Pr at lemma3 l",
    ]);
    let mut rng = rng::stream(0, rng::salts::ANALYSIS);
    for &w in &ws {
        let mut probe = |l: usize| -> f64 {
            let full = (0..trials)
                .filter(|_| BitMatrix::random(l, w, &mut rng).has_full_column_rank())
                .count();
            #[allow(clippy::cast_precision_loss)]
            {
                full as f64 / trials as f64
            }
        };
        let at_w = probe(w);
        let at_w2 = probe(w + 2);
        let at_w5 = probe(w + 5);
        let at_w10 = probe(w + 10);
        let l3 = lemma3_row_threshold(w, 0.01);
        let at_l3 = probe(l3);
        t.row(&[
            w.to_string(),
            f3(at_w),
            f3(at_w2),
            f3(at_w5),
            f3(at_w10),
            l3.to_string(),
            f3(at_l3),
        ]);
        assert!(
            at_l3 >= 0.99 - 0.01,
            "Lemma 3 violated at w={w}: {at_l3} < 0.99"
        );
    }
    t.print();
    println!();
    println!("claim check: Pr at the Lemma 3 threshold ≥ 0.99 in every row (asserted).");
    println!("observation: w + ~5 rows already decode with ≥ 95% probability — the lemma is");
    println!("conservative, which is why the calibrated c_fwd can sit far below its constants.");
}
