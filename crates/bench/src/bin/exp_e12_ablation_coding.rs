//! **E12 — Ablation: network coding on vs off in Stage 4.**
//!
//! The design choice the paper motivates: coding lets one
//! `O(log n·logΔ)`-round phase carry `⌈log n⌉` packets instead of one,
//! saving the `log n` factor in the `k`-term. This sweep holds
//! everything else fixed (same stages 1–3, same constants) and toggles
//! `group_size_override`: the dissemination-stage rounds should differ
//! by ≈ `log n / ((m+4)/(1+4))`-ish, growing with `n`.

use kbcast_bench::sweep::{gnp_standard, measure, Algo};
use kbcast_bench::table::{f1, f2, Table};
use kbcast_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let seeds = 2;
    let ns: Vec<usize> = scale.pick(vec![64, 256], vec![64, 128, 256, 512]);
    let kf = 4;
    println!("E12: Stage 4 rounds, coded vs uncoded ablation (k = {kf}n), {seeds} seeds");
    println!();

    let mut t = Table::new(&[
        "n",
        "k",
        "m=⌈logn⌉",
        "s4 coded",
        "s4 uncoded",
        "uncoded/coded",
        "total coded",
        "total uncoded",
    ]);
    for &n in &ns {
        let k = kf * n;
        let topo = gnp_standard(n);
        let c = measure(Algo::Coded, &topo, k, seeds);
        let u = measure(Algo::Uncoded, &topo, k, seeds);
        t.row(&[
            n.to_string(),
            k.to_string(),
            protocols::timing::log_n(n).to_string(),
            format!("{:.0}", c.dissem_rounds),
            format!("{:.0}", u.dissem_rounds),
            f2(u.dissem_rounds / c.dissem_rounds.max(1.0)),
            f1(c.rounds),
            f1(u.rounds),
        ]);
    }
    t.print();
    println!();
    println!("claim check: the uncoded/coded ratio grows with log n — that ratio IS the");
    println!("paper's contribution (the log n saved by coding in the k-dominated regime).");
}
