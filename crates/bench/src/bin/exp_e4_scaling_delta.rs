//! **E4 — Scaling with Δ (the `logΔ` factor of Theorem 2).**
//!
//! Paper claim: the per-packet cost of the coded algorithm is
//! `O(logΔ)`. On random `d`-regular graphs (which pin Δ = d exactly)
//! with fixed `n` and `k`, the amortized cost should track
//! `⌈log₂ Δ⌉` — constant ratio across the sweep.

use kbcast_bench::sweep::{measure, Algo};
use kbcast_bench::table::{f1, f2, Table};
use kbcast_bench::Scale;
use radio_net::topology::Topology;

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(128, 256);
    let k = scale.pick(128, 512);
    let seeds = 2;
    let ds: Vec<usize> = scale.pick(vec![4, 16], vec![4, 8, 16, 32, 64]);
    println!("E4: amortized cost vs Δ on random d-regular graphs (n={n}, k={k}), {seeds} seeds");
    println!();

    let mut t = Table::new(&["Δ", "⌈logΔ⌉", "D", "coded amort", "amort/logΔ", "ok"]);
    let mut ratios = Vec::new();
    for &d in &ds {
        let topo = Topology::RandomRegular { n, d };
        let c = measure(Algo::Coded, &topo, k, seeds);
        let log_delta = protocols::timing::epoch_len(d) as f64;
        let ratio = c.amortized / log_delta;
        ratios.push(ratio);
        t.row(&[
            d.to_string(),
            format!("{log_delta}"),
            c.diameter.to_string(),
            f1(c.amortized),
            f2(ratio),
            format!("{}/{}", c.successes, c.seeds),
        ]);
    }
    t.print();
    println!();
    let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().copied().fold(0.0f64, f64::max);
    println!(
        "amort/logΔ spread: min {min:.1}, max {max:.1} (claim: bounded ratio — amortized cost \
         is Θ(logΔ), max/min = {:.2})",
        max / min
    );
}
