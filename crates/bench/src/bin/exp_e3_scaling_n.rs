//! **E3 — Scaling with n at fixed k (Theorem 2's additive term, and the
//! `log n` gap).**
//!
//! Paper claim: at fixed `k`, the coded algorithm's amortized cost stays
//! flat as `n` grows (its per-packet term is `O(logΔ)`, independent of
//! `n`), while BII's amortized cost grows as `Θ(log n·logΔ)`. The
//! crossover point where the coded algorithm starts winning depends on
//! the calibrated constants (documented in EXPERIMENTS.md); the *trend*
//! — flat vs growing — is the reproduced shape.

use kbcast_bench::stats::slope;
use kbcast_bench::sweep::{gnp_standard, measure, Algo};
use kbcast_bench::table::{f1, f2, Table};
use kbcast_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let ns: Vec<usize> = scale.pick(vec![64, 128, 256], vec![64, 128, 256, 512, 1024]);
    let seeds = 2;
    let k = scale.pick(128, 512);
    println!(
        "E3: amortized rounds/packet vs n at fixed k = {k} (k-term dominant at every n), \
         G(n, 2ln n/n), {seeds} seeds"
    );
    println!();
    let mut t = Table::new(&[
        "n",
        "log n",
        "D",
        "Δ",
        "coded amort",
        "coded/logΔ",
        "bii amort",
        "bii/(logn·logΔ)",
    ]);
    let mut lognx = Vec::new();
    let mut coded_y = Vec::new();
    let mut bii_y = Vec::new();
    for &n in &ns {
        let topo = gnp_standard(n);
        let c = measure(Algo::Coded, &topo, k, seeds);
        let b = measure(Algo::Bii, &topo, k, seeds);
        let log_n = protocols::timing::log_n(n) as f64;
        let log_delta = protocols::timing::epoch_len(c.max_degree) as f64;
        t.row(&[
            n.to_string(),
            format!("{log_n}"),
            c.diameter.to_string(),
            c.max_degree.to_string(),
            f1(c.amortized),
            f2(c.amortized / log_delta),
            f1(b.amortized),
            f2(b.amortized / (log_n * log_delta)),
        ]);
        if c.successes > 0 && b.successes > 0 {
            lognx.push(log_n);
            coded_y.push(c.amortized);
            bii_y.push(b.amortized);
        }
    }
    t.print();
    println!();
    println!(
        "growth per unit log n (rows where both algorithms succeeded): coded {:.1} \
         rounds/packet (claim: ~flat), bii {:.1} (claim: grows)",
        slope(&lognx, &coded_y),
        slope(&lognx, &bii_y)
    );
}
