//! **E9 — Lemma 5: the collection stage takes
//! `O(k + (D + log n)·log n)` rounds, including the estimate doubling.**
//!
//! The sweep varies `k` and measures Stage 3's rounds: flat at
//! `(D + log n)·log n`-ish until `k` reaches the initial estimate
//! `x₀ = (D + log n)·log n`, then linear in `k`; the phase counter
//! shows the doubling kicking in exactly when `k` outgrows the
//! schedule's slot supply.

use kbcast::runner::CodedProtocol;
use kbcast::Config;
use kbcast_bench::session::{sweep_protocol, SweepSpec};
use kbcast_bench::stats::{median, slope};
use kbcast_bench::sweep::gnp_standard;
use kbcast_bench::table::Table;
use kbcast_bench::{verify_from_env, Scale};

fn main() {
    let scale = Scale::from_env();
    let verify = verify_from_env();
    let n = scale.pick(64, 128);
    let seeds = scale.pick(2u64, 3);
    let ks: Vec<usize> = scale.pick(vec![16, 256, 2048], vec![16, 64, 256, 1024, 4096, 8192]);
    let topo = gnp_standard(n);
    let g = topo.build(0).expect("topology");
    let cfg = Config::for_network(n, g.diameter().unwrap(), g.max_degree());
    println!(
        "E9: Stage 3 rounds vs k (n={n}, D={}, Δ={}, x0={}), {seeds} seeds",
        g.diameter().unwrap(),
        g.max_degree(),
        cfg.initial_estimate()
    );
    println!();

    let mut t = Table::new(&["k", "collect rounds", "phases", "rounds/k", "ok"]);
    let mut kx = Vec::new();
    let mut ry = Vec::new();
    for &k in &ks {
        let mut spec = SweepSpec::new(&topo, k, seeds);
        spec.options.verify = verify;
        let reports = sweep_protocol(&CodedProtocol::default(), &spec);
        let mut rounds = Vec::new();
        let mut phases = Vec::new();
        let mut ok = 0;
        for r in &reports {
            if r.success {
                ok += 1;
                #[allow(clippy::cast_precision_loss)]
                rounds.push(r.meta.stages.collect as f64);
                phases.push(f64::from(r.meta.collection_phases));
            }
        }
        let med = median(&rounds);
        #[allow(clippy::cast_precision_loss)]
        {
            kx.push(k as f64);
            ry.push(med);
        }
        #[allow(clippy::cast_precision_loss)]
        t.row(&[
            k.to_string(),
            format!("{med:.0}"),
            format!("{:.0}", median(&phases)),
            format!("{:.1}", med / k as f64),
            format!("{ok}/{seeds}"),
        ]);
    }
    t.print();
    println!();
    let half = kx.len() / 2;
    println!(
        "tail slope (rounds per packet once k dominates): {:.1} — Lemma 5 claims O(1) \
         rounds/packet in this regime (constant, independent of n and Δ)",
        slope(&kx[half..], &ry[half..])
    );
}
