//! **E5 — Per-stage round counts vs the per-stage bounds.**
//!
//! Paper claims, stage by stage:
//!
//! * Stage 1 (Fact 1): `O((D + log n)·log n·logΔ)`;
//! * Stage 2 (Theorem 1): `O(D·log n·logΔ)`;
//! * Stage 3 (Lemma 5): `O(k + (D + log n)·log n)`;
//! * Stage 4 (Lemma 7): `O(k·logΔ + D·log n·logΔ)`.
//!
//! This binary runs the full algorithm across an (n, k) grid and prints
//! each stage's measured rounds next to its bound formula's value; the
//! ratio column should stay bounded across the sweep if the shape holds.

use kbcast::runner::{run, Workload};
use kbcast::Config;
use kbcast_bench::sweep::gnp_standard;
use kbcast_bench::table::{f2, Table};
use kbcast_bench::Scale;
use protocols::timing::{epoch_len, log_n};

fn main() {
    let scale = Scale::from_env();
    let ns: Vec<usize> = scale.pick(vec![64, 128], vec![64, 128, 256, 512]);
    let k_factors: Vec<usize> = scale.pick(vec![1, 4], vec![1, 4, 8]);
    let seed = 7;
    println!("E5: measured stage rounds / per-stage bound formula, G(n, 2ln n/n)");
    println!("(bound formulas evaluated without their hidden constants; ratios should be");
    println!(" roughly flat across the sweep if the measured shape matches the claim)");
    println!();

    let mut t = Table::new(&[
        "n", "k", "D", "Δ", "s1", "s1/bound", "s2", "s2/bound", "s3", "s3/bound", "s4", "s4/bound",
    ]);
    for &n in &ns {
        for &kf in &k_factors {
            let k = kf * n;
            let topo = gnp_standard(n);
            let g = topo.build(seed).expect("topology");
            let (d, delta) = (g.diameter().unwrap(), g.max_degree());
            let cfg = Config::for_network(n, d, delta);
            let w = Workload::random(n, k, seed);
            let r = run(&topo, &w, Some(cfg), seed).expect("run");
            if !r.success {
                eprintln!("warning: n={n} k={k} seed={seed} failed; skipping row");
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let (df, lnf, ldf, kf64) =
                (d as f64, log_n(n) as f64, epoch_len(delta) as f64, k as f64);
            let b1 = (df + lnf) * lnf * ldf;
            let b2 = df * lnf * ldf;
            let b3 = kf64 + (df + lnf) * lnf;
            let b4 = kf64 * ldf + df * lnf * ldf;
            #[allow(clippy::cast_precision_loss)]
            t.row(&[
                n.to_string(),
                k.to_string(),
                d.to_string(),
                delta.to_string(),
                r.stages.leader.to_string(),
                f2(r.stages.leader as f64 / b1),
                r.stages.bfs.to_string(),
                f2(r.stages.bfs as f64 / b2),
                r.stages.collect.to_string(),
                f2(r.stages.collect as f64 / b3),
                r.stages.disseminate.to_string(),
                f2(r.stages.disseminate as f64 / b4),
            ]);
        }
    }
    t.print();
}
