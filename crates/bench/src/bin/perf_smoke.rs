//! **perf_smoke — simulator-throughput benchmark of the engine hot loop.**
//!
//! Times the canonical scenarios (grid / G(n,p) topology × single-source
//! / spread workload) by driving `radio_net::Engine` directly with
//! `kbcast` protocol nodes, and writes `results/BENCH_engine.json` with
//! rounds/sec and wall milliseconds per scenario. Unlike the `exp_*`
//! binaries (which measure *round counts*, the paper's metric), this
//! binary measures the *simulator's own speed*, so the perf trajectory of
//! the engine is tracked across PRs — compare the JSON against the
//! numbers recorded in EXPERIMENTS.md §"Engine throughput".
//!
//! Only the stepping loop (`run_until_all_done`) is timed; topology
//! generation, diameter probing and node construction are setup. Each
//! scenario is repeated `reps` times (median reported) on freshly built
//! state. `KB_SCALE=quick` lowers the repetitions, not the scenario
//! sizes, so the recorded numbers stay comparable.

use std::fmt::Write as _;
use std::time::Instant;

use kbcast::runner::{round_cap, Workload};
use kbcast::{Config, KbcastNode};
use kbcast_bench::Scale;
use radio_net::engine::Engine;
use radio_net::graph::NodeId;
use radio_net::rng;
use radio_net::topology::Topology;

struct Scenario {
    name: &'static str,
    topology: Topology,
    /// `None` = single source at node 0; `Some(())` is spread
    /// (round-robin) placement.
    spread: bool,
    k: usize,
}

struct Measurement {
    name: String,
    n: usize,
    k: usize,
    rounds: u64,
    wall_ms: f64,
    rounds_per_sec: f64,
    all_done: bool,
}

fn measure(s: &Scenario, seed: u64) -> Measurement {
    let graph = s.topology.build(seed).expect("topology builds");
    let n = graph.len();
    let workload = if s.spread {
        Workload::round_robin(n, s.k)
    } else {
        Workload::single_source(n, 0, s.k)
    };
    let diameter = graph.diameter().expect("connected");
    let cfg = Config::for_network(n, diameter, graph.max_degree());
    let cap = round_cap(&cfg, s.k);
    let nodes: Vec<KbcastNode> = (0..n)
        .map(|i| {
            KbcastNode::new(
                cfg,
                i as u64,
                workload.packets_of(i),
                rng::stream(seed, i as u64),
            )
        })
        .collect();
    let awake: Vec<NodeId> = (0..n)
        .filter(|&i| !workload.packets_of(i).is_empty())
        .map(NodeId::new)
        .collect();
    let mut engine = Engine::new(graph, nodes, awake).expect("engine builds");

    let start = Instant::now();
    let all_done = engine.run_until_all_done(cap);
    let wall = start.elapsed();

    let rounds = engine.round();
    let wall_ms = wall.as_secs_f64() * 1e3;
    #[allow(clippy::cast_precision_loss)]
    let rounds_per_sec = rounds as f64 / wall.as_secs_f64().max(1e-9);
    Measurement {
        name: s.name.to_string(),
        n,
        k: s.k,
        rounds,
        wall_ms,
        rounds_per_sec,
        all_done,
    }
}

fn median_by<T, F: Fn(&T) -> f64>(items: &[T], key: F) -> f64 {
    let mut v: Vec<f64> = items.iter().map(key).collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    let scale = Scale::from_env();
    let reps = scale.pick(1, 3);
    let scenarios = [
        Scenario {
            name: "grid64x64/single_source",
            topology: Topology::Grid2d { rows: 64, cols: 64 },
            spread: false,
            k: 8,
        },
        Scenario {
            name: "grid64x64/spread",
            topology: Topology::Grid2d { rows: 64, cols: 64 },
            spread: true,
            k: 64,
        },
        Scenario {
            name: "gnp1024/single_source",
            topology: kbcast_bench::sweep::gnp_standard(1024),
            spread: false,
            k: 8,
        },
        Scenario {
            name: "gnp1024/spread",
            topology: kbcast_bench::sweep::gnp_standard(1024),
            spread: true,
            k: 64,
        },
    ];

    println!("perf_smoke: engine hot-loop throughput ({reps} rep(s) per scenario, median)");
    println!();
    let mut json_entries = Vec::new();
    for s in &scenarios {
        let runs: Vec<Measurement> = (0..reps).map(|rep| measure(s, rep as u64)).collect();
        let wall_ms = median_by(&runs, |m| m.wall_ms);
        let rps = median_by(&runs, |m| m.rounds_per_sec);
        let m0 = &runs[0];
        println!(
            "{:<26} n {:>5}  k {:>3}  rounds {:>7}  wall {:>9.2} ms  {:>12.0} rounds/s{}",
            m0.name,
            m0.n,
            m0.k,
            m0.rounds,
            wall_ms,
            rps,
            if m0.all_done { "" } else { "  [CAP HIT]" },
        );
        let mut e = String::new();
        write!(
            e,
            "    {{\"scenario\": \"{}\", \"n\": {}, \"k\": {}, \"rounds\": {}, \
             \"wall_ms\": {:.3}, \"rounds_per_sec\": {:.1}, \"all_done\": {}}}",
            m0.name, m0.n, m0.k, m0.rounds, wall_ms, rps, m0.all_done
        )
        .expect("write to string");
        json_entries.push(e);
    }

    let json = format!(
        "{{\n  \"bench\": \"engine_hot_loop\",\n  \"reps\": {reps},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        json_entries.join(",\n")
    );
    // KB_BENCH_OUT redirects the report (the perf gate writes to a
    // scratch path so the committed baseline stays untouched).
    let path =
        std::env::var("KB_BENCH_OUT").unwrap_or_else(|_| "results/BENCH_engine.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e} (printing instead)\n{json}"),
    }
}
