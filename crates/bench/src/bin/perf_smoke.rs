//! **perf_smoke — simulator-throughput benchmark of the engine hot loop.**
//!
//! Times the canonical scenarios (grid / G(n,p) topology × single-source
//! / spread workload) by driving `radio_net::Engine` directly with
//! `kbcast` protocol nodes, and writes `results/BENCH_engine.json` with
//! rounds/sec and wall milliseconds per scenario. Unlike the `exp_*`
//! binaries (which measure *round counts*, the paper's metric), this
//! binary measures the *simulator's own speed*, so the perf trajectory of
//! the engine is tracked across PRs — compare the JSON against the
//! numbers recorded in EXPERIMENTS.md §"Engine throughput".
//!
//! Only the stepping loop (`run_until_all_done`) is timed; topology
//! generation, diameter probing and node construction are setup. Each
//! scenario is repeated `reps` times (median reported) on freshly built
//! state. `KB_SCALE=quick` lowers the repetitions, not the scenario
//! sizes, so the recorded numbers stay comparable — except the
//! `full_only` scale-out scenarios (grid256x256 and the million-node
//! unit disk), which are skipped at quick scale and always run a single
//! repetition so the committed baseline stays regenerable.
//!
//! Scale-out scenarios avoid the all-pairs `Graph::diameter` probe
//! (quadratic in n): grids use the closed form `rows + cols - 2` and
//! unit disks the `2 × eccentricity(0)` upper bound, both valid
//! diameter bounds for protocol parameterization. The original four
//! scenarios keep the exact probe so their round counts remain
//! bit-identical across engine rework PRs.
//!
//! Every scenario must complete (`all_done`) — a cap hit aborts the
//! benchmark, so a committed baseline always reflects finished runs.

use std::fmt::Write as _;
use std::time::Instant;

use kbcast::baseline::{BiiConfig, BiiNode};
use kbcast::runner::{round_cap, Workload};
use kbcast::{Config, KbcastNode};
use kbcast_bench::Scale;
use protocols::decay::Decay;
use radio_net::engine::{Engine, Node};
use radio_net::graph::{Graph, NodeId};
use radio_net::rng;
use radio_net::topology::Topology;

/// Which protocol's nodes drive the engine.
enum Protocol {
    /// The main coded algorithm ([`KbcastNode`]).
    Coded,
    /// The BII baseline with an explicit per-packet epoch budget
    /// (bypassing [`BiiConfig::for_network`]'s calibration, which is
    /// tuned for small networks).
    Bii { epochs_per_packet: usize },
}

/// How the scenario obtains the diameter bound fed to the protocol
/// configuration.
enum DiameterBound {
    /// `Graph::diameter()` — exact but quadratic in n.
    Exact,
    /// A closed form known for the topology (e.g. `rows + cols - 2`).
    Formula(usize),
    /// `2 × eccentricity(0)` — a 2-approximate upper bound from one
    /// BFS, the only affordable probe at a million nodes.
    DoubleEccentricity,
}

struct Scenario {
    name: &'static str,
    topology: Topology,
    /// `false` = single source at node 0; `true` is spread
    /// (round-robin) placement.
    spread: bool,
    k: usize,
    protocol: Protocol,
    diameter: DiameterBound,
    /// Scale-out scenario: skipped at quick scale, single repetition at
    /// full scale.
    full_only: bool,
}

struct Measurement {
    name: String,
    n: usize,
    k: usize,
    rounds: u64,
    wall_ms: f64,
    rounds_per_sec: f64,
    all_done: bool,
}

/// Times `run_until_all_done` on a freshly built engine.
fn time_engine<N: Node>(
    graph: Graph,
    nodes: Vec<N>,
    awake: Vec<NodeId>,
    cap: u64,
) -> (u64, f64, bool) {
    let mut engine = Engine::new(graph, nodes, awake).expect("engine builds");
    let start = Instant::now();
    let all_done = engine.run_until_all_done(cap);
    let wall = start.elapsed();
    (engine.round(), wall.as_secs_f64(), all_done)
}

fn measure(s: &Scenario, seed: u64) -> Measurement {
    let graph = s.topology.build(seed).expect("topology builds");
    let n = graph.len();
    let workload = if s.spread {
        Workload::round_robin(n, s.k)
    } else {
        Workload::single_source(n, 0, s.k)
    };
    let diameter = match s.diameter {
        DiameterBound::Exact => graph.diameter().expect("connected"),
        DiameterBound::Formula(d) => d,
        DiameterBound::DoubleEccentricity => {
            2 * graph.eccentricity(NodeId::new(0)).expect("connected")
        }
    };
    let max_degree = graph.max_degree();
    let awake: Vec<NodeId> = (0..n)
        .filter(|&i| !workload.packets_of(i).is_empty())
        .map(NodeId::new)
        .collect();

    let (rounds, wall_s, all_done) = match s.protocol {
        Protocol::Coded => {
            let cfg = Config::for_network(n, diameter, max_degree);
            let cap = round_cap(&cfg, s.k);
            let nodes: Vec<KbcastNode> = (0..n)
                .map(|i| {
                    KbcastNode::new(
                        cfg,
                        i as u64,
                        workload.packets_of(i),
                        rng::stream(seed, i as u64),
                    )
                })
                .collect();
            time_engine(graph, nodes, awake, cap)
        }
        Protocol::Bii { epochs_per_packet } => {
            let cfg = BiiConfig {
                epochs_per_packet,
                delta_bound: max_degree.max(1),
            };
            // Mirrors BiiProtocol::round_cap: 8× the expected
            // (k + D) · epochs_per_packet · |epoch| budget.
            let epoch = Decay::new(cfg.delta_bound).epoch_len() as u64;
            let cap = 8
                * ((s.k as u64 + diameter as u64 + 2) * cfg.epochs_per_packet as u64 * epoch)
                + 64;
            let nodes: Vec<BiiNode> = (0..n)
                .map(|i| {
                    BiiNode::with_target(
                        cfg,
                        workload.packets_of(i),
                        rng::stream(seed, i as u64),
                        s.k,
                    )
                })
                .collect();
            time_engine(graph, nodes, awake, cap)
        }
    };

    let wall_ms = wall_s * 1e3;
    #[allow(clippy::cast_precision_loss)]
    let rounds_per_sec = rounds as f64 / wall_s.max(1e-9);
    Measurement {
        name: s.name.to_string(),
        n,
        k: s.k,
        rounds,
        wall_ms,
        rounds_per_sec,
        all_done,
    }
}

fn median_by<T, F: Fn(&T) -> f64>(items: &[T], key: F) -> f64 {
    let mut v: Vec<f64> = items.iter().map(key).collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    let scale = Scale::from_env();
    let reps = scale.pick(1, 3);
    let quick = reps == 1;
    let scenarios = [
        Scenario {
            name: "grid64x64/single_source",
            topology: Topology::Grid2d { rows: 64, cols: 64 },
            spread: false,
            k: 8,
            protocol: Protocol::Coded,
            diameter: DiameterBound::Exact,
            full_only: false,
        },
        Scenario {
            name: "grid64x64/spread",
            topology: Topology::Grid2d { rows: 64, cols: 64 },
            spread: true,
            k: 64,
            protocol: Protocol::Coded,
            diameter: DiameterBound::Exact,
            full_only: false,
        },
        Scenario {
            name: "gnp1024/single_source",
            topology: kbcast_bench::sweep::gnp_standard(1024),
            spread: false,
            k: 8,
            protocol: Protocol::Coded,
            diameter: DiameterBound::Exact,
            full_only: false,
        },
        Scenario {
            name: "gnp1024/spread",
            topology: kbcast_bench::sweep::gnp_standard(1024),
            spread: true,
            k: 64,
            protocol: Protocol::Coded,
            diameter: DiameterBound::Exact,
            full_only: false,
        },
        Scenario {
            name: "grid256x256/single_source",
            topology: Topology::Grid2d {
                rows: 256,
                cols: 256,
            },
            spread: false,
            k: 8,
            protocol: Protocol::Coded,
            diameter: DiameterBound::Formula(256 + 256 - 2),
            full_only: true,
        },
        Scenario {
            name: "udg1m/single_source",
            topology: Topology::UnitDisk {
                n: 1_000_000,
                radius: 0.0036,
            },
            spread: false,
            k: 2,
            protocol: Protocol::Bii {
                epochs_per_packet: 24,
            },
            diameter: DiameterBound::DoubleEccentricity,
            full_only: true,
        },
    ];

    println!("perf_smoke: engine hot-loop throughput ({reps} rep(s) per scenario, median)");
    println!();
    let mut json_entries = Vec::new();
    for s in &scenarios {
        if quick && s.full_only {
            println!("{:<26} [skipped at quick scale]", s.name);
            continue;
        }
        let sreps = if s.full_only { 1 } else { reps };
        let runs: Vec<Measurement> = (0..sreps).map(|rep| measure(s, rep as u64)).collect();
        let wall_ms = median_by(&runs, |m| m.wall_ms);
        let rps = median_by(&runs, |m| m.rounds_per_sec);
        let m0 = &runs[0];
        println!(
            "{:<26} n {:>7}  k {:>3}  rounds {:>7}  wall {:>9.2} ms  {:>12.0} rounds/s{}",
            m0.name,
            m0.n,
            m0.k,
            m0.rounds,
            wall_ms,
            rps,
            if m0.all_done { "" } else { "  [CAP HIT]" },
        );
        for m in &runs {
            assert!(
                m.all_done,
                "scenario {} hit the round cap at {} rounds",
                m.name, m.rounds
            );
        }
        let mut e = String::new();
        write!(
            e,
            "    {{\"scenario\": \"{}\", \"n\": {}, \"k\": {}, \"rounds\": {}, \
             \"wall_ms\": {:.3}, \"rounds_per_sec\": {:.1}, \"reps\": {}, \"all_done\": {}}}",
            m0.name, m0.n, m0.k, m0.rounds, wall_ms, rps, sreps, m0.all_done
        )
        .expect("write to string");
        json_entries.push(e);
    }

    let json = format!(
        "{{\n  \"bench\": \"engine_hot_loop\",\n  \"reps\": {reps},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        json_entries.join(",\n")
    );
    // KB_BENCH_OUT redirects the report (the perf gate writes to a
    // scratch path so the committed baseline stays untouched).
    let path =
        std::env::var("KB_BENCH_OUT").unwrap_or_else(|_| "results/BENCH_engine.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e} (printing instead)\n{json}"),
    }
}
