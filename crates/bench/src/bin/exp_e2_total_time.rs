//! **E2 — Total completion time vs k (Theorem 2).**
//!
//! Paper claim: total time is `O(k·logΔ + (D + log n)·log n·logΔ)` —
//! an additive fixed cost plus a term linear in `k`. On log-log axes the
//! curve's slope tends to 1 once `k` dominates, and the fitted
//! per-packet slope on the linear tail estimates the `logΔ` coefficient.

use kbcast_bench::stats::{loglog_slope, slope};
use kbcast_bench::sweep::{gnp_standard, measure, Algo};
use kbcast_bench::table::{f1, f2, Table};
use kbcast_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(128, 256);
    let seeds = 2;
    let ks: Vec<usize> = scale.pick(vec![32, 128, 512], vec![32, 96, 256, 768, 2048]);
    let topo = gnp_standard(n);
    let probe = topo.build(0).expect("topology");
    let delta = probe.max_degree();
    println!(
        "E2: total rounds vs k, {} (n={n}, D={}, Δ={delta}), {} seeds/point",
        topo,
        probe.diameter().unwrap(),
        seeds
    );
    println!();

    let mut t = Table::new(&["k", "coded rounds", "bii rounds", "coded r/k", "bii r/k"]);
    let mut kxs = Vec::new();
    let mut coded_y = Vec::new();
    let mut bii_y = Vec::new();
    for &k in &ks {
        let c = measure(Algo::Coded, &topo, k, seeds);
        let b = measure(Algo::Bii, &topo, k, seeds);
        #[allow(clippy::cast_precision_loss)]
        {
            kxs.push(k as f64);
        }
        coded_y.push(c.rounds);
        bii_y.push(b.rounds);
        t.row(&[
            k.to_string(),
            format!("{:.0}", c.rounds),
            format!("{:.0}", b.rounds),
            f1(c.amortized),
            f1(b.amortized),
        ]);
    }
    t.print();
    println!();

    // Linear tail: per-packet cost from the last half of the sweep.
    let half = kxs.len() / 2;
    let coded_tail = slope(&kxs[half..], &coded_y[half..]);
    let bii_tail = slope(&kxs[half..], &bii_y[half..]);
    let log_delta = protocols::timing::epoch_len(delta) as f64;
    println!(
        "log-log slope (k-dominated regime tends to 1): coded {}, bii {}",
        f2(loglog_slope(&kxs[half..], &coded_y[half..])),
        f2(loglog_slope(&kxs[half..], &bii_y[half..]))
    );
    println!(
        "per-packet slope on the tail: coded {:.1} rounds/packet ({:.1}·logΔ), bii {:.1} ({:.1}·logΔ)",
        coded_tail,
        coded_tail / log_delta,
        bii_tail,
        bii_tail / log_delta
    );
    println!(
        "fixed additive cost (extrapolated intercept at k=0): coded ≈ {:.0} rounds \
         [(D+log n)·log n·logΔ term]",
        coded_y[half] - coded_tail * kxs[half]
    );
}
