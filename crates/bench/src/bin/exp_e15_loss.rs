//! **E15 (extension) — robustness under channel noise.**
//!
//! Beyond the paper: its model is collision-only. This experiment
//! injects i.i.d. reception loss (fading/external interference) and
//! measures the algorithm's degradation. The self-correcting machinery
//! (acknowledgements + alarms in Stage 3, rank-redundant coding in
//! Stage 4) should absorb moderate loss with only a rounds penalty;
//! heavy loss eventually breaks the one-shot stages (BFS labeling,
//! dissemination waves), which is where success collapses.

use kbcast::runner::CodedProtocol;
use kbcast_bench::session::{sweep_protocol, SweepSpec};
use kbcast_bench::table::{f1, f3, Table};
use kbcast_bench::{verify_from_env, Scale};
use radio_net::topology::Topology;

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.pick(3u64, 10);
    let n = 64;
    let k = 128;
    let topo = Topology::Gnp { n, p: 0.13 };
    println!("E15 (extension): success & cost vs injected reception-loss rate");
    println!("({topo}, k={k}, {seeds} seeds/row; loss is on top of collision losses)");
    println!();

    let mut t = Table::new(&["loss", "success", "median rounds", "slowdown", "dropped/rx"]);
    let mut base_rounds = None;
    for &loss in &[0.0f64, 0.02, 0.05, 0.10, 0.20, 0.35] {
        let mut spec = SweepSpec::new(&topo, k, seeds);
        spec.options.loss_rate = loss;
        spec.options.verify = verify_from_env();
        let reports = sweep_protocol(&CodedProtocol::default(), &spec);
        let mut ok = 0;
        let mut rounds = Vec::new();
        let mut drop_ratio = 0.0;
        for r in &reports {
            if r.success {
                ok += 1;
                #[allow(clippy::cast_precision_loss)]
                rounds.push(r.rounds_total as f64);
            }
            #[allow(clippy::cast_precision_loss)]
            {
                drop_ratio +=
                    r.stats.dropped as f64 / (r.stats.dropped + r.stats.receptions).max(1) as f64;
            }
        }
        let med = kbcast_bench::stats::median(&rounds);
        let base = *base_rounds.get_or_insert(med);
        #[allow(clippy::cast_precision_loss)]
        t.row(&[
            format!("{loss:.2}"),
            format!("{ok}/{seeds}"),
            format!("{med:.0}"),
            f1(med / base),
            f3(drop_ratio / seeds as f64),
        ]);
    }
    t.print();
    println!();
    println!("shape check: graceful rounds-inflation at small loss (the protocol's built-in");
    println!("redundancy absorbs it), collapse only at heavy loss — the failure point is the");
    println!("one-shot stages (BFS labeling and per-ring dissemination windows).");
}
