//! **E19 (extension) — streaming saturation curves under a λ-sweep.**
//!
//! The continuous-traffic companion to E14's one-shot batches: Poisson
//! arrivals at offered load λ (packets/round, network-wide) stream into
//! the dynamic protocol, run both unpipelined (`Sequential`, batches
//! tile time) and pipelined (`Interleaved`, parity-TDM epochs), across
//! grid, unit-disk and G(n,p) topologies. For each (topology, mode, λ)
//! the sweep records sustained throughput, queue-depth statistics (from
//! the trace collector's streaming gauges) and per-packet latency
//! percentiles p50/p95/p99 (nearest-rank over delivery stamps), then
//! locates the *knee*: the largest swept λ every seed still fully
//! delivers within the horizon.
//!
//! The one-shot coded protocol and the BII baseline cannot consume
//! mid-run arrivals, so they enter as *reference service rates*:
//! `k / T(k)` from a one-shot run is the ceiling a streaming adaptation
//! of each could sustain — the measured knees sit below the coded
//! reference (batch framing + marker overhead), and the interleaved
//! TDM's knee sits at or below the sequential one (its parity lanes
//! halve each lane's rate; the pipelining buys structure, not
//! capacity — see DESIGN.md).
//!
//! Output: a table to stdout and `results/E19_saturation.json`
//! (redirect with `KB_E19_OUT`; `scripts/check.sh` runs the quick
//! configuration as a smoke stage). Deterministic in the fixed seed
//! range — same binary, same scale, same JSON, bit for bit.

use std::fmt::Write as _;

use kbcast::baseline::BiiProtocol;
use kbcast::dynamic::{run_streaming, PipelineMode, StreamingReport};
use kbcast::runner::{CodedProtocol, RunOptions, Workload};
use kbcast::session::run_protocol;
use kbcast_bench::parallel::par_map_indexed;
use kbcast_bench::stats::median;
use kbcast_bench::table::Table;
use kbcast_bench::traffic::{SaturationSpec, TrafficPattern, TrafficSpec};
use kbcast_bench::{verify_from_env, Scale};
use radio_net::topology::Topology;

/// One (topology, mode, λ) sweep point, aggregated over seeds.
struct Point {
    topology: String,
    mode: &'static str,
    lambda: f64,
    seeds: u64,
    /// Seeds that delivered every arrived packet within the horizon.
    ok: u64,
    /// Mean arrived packets per seed.
    mean_k: f64,
    /// Mean fully-delivered packets per executed round.
    throughput: f64,
    /// Median over seeds of the per-seed max summed queue depth.
    queue_max: f64,
    /// Median over seeds of the per-seed mean summed queue depth.
    queue_mean: f64,
    /// Median over seeds of each latency percentile.
    p50: f64,
    p95: f64,
    p99: f64,
}

/// Reference service rate from a one-shot protocol: k / T(k).
struct Reference {
    topology: String,
    protocol: &'static str,
    k: usize,
    median_rounds: f64,
    rate: f64,
}

fn mode_name(mode: PipelineMode) -> &'static str {
    match mode {
        PipelineMode::Sequential => "seq",
        PipelineMode::Interleaved => "tdm",
    }
}

#[allow(clippy::cast_precision_loss)]
fn summarize(
    topology: &Topology,
    mode: PipelineMode,
    lambda: f64,
    reports: &[StreamingReport],
) -> Point {
    let ok = reports.iter().filter(|r| r.latencies.len() == r.k).count() as u64;
    let mean_k = reports.iter().map(|r| r.k as f64).sum::<f64>() / reports.len().max(1) as f64;
    let throughput = reports
        .iter()
        .map(StreamingReport::sustained_throughput)
        .sum::<f64>()
        / reports.len().max(1) as f64;
    let gauge = |f: &dyn Fn(&StreamingReport) -> f64| {
        let v: Vec<f64> = reports.iter().map(f).collect();
        median(&v)
    };
    let pct = |p: f64| {
        let v: Vec<f64> = reports
            .iter()
            .filter_map(|r| r.latency_percentile(p))
            .map(|x| x as f64)
            .collect();
        median(&v)
    };
    Point {
        topology: topology.to_string(),
        mode: mode_name(mode),
        lambda,
        seeds: reports.len() as u64,
        ok,
        mean_k,
        throughput,
        queue_max: gauge(&|r| {
            r.trace
                .as_ref()
                .and_then(|t| t.queue_stats.as_ref())
                .map_or(0.0, |q| q.max as f64)
        }),
        queue_mean: gauge(&|r| {
            r.trace
                .as_ref()
                .and_then(|t| t.queue_stats.as_ref())
                .map_or(0.0, radio_net::trace::GaugeStats::mean)
        }),
        p50: pct(50.0),
        p95: pct(95.0),
        p99: pct(99.0),
    }
}

fn sweep_point(
    topo: &Topology,
    mode: PipelineMode,
    lambda: f64,
    spec: &SaturationSpec,
    seeds: u64,
) -> Vec<StreamingReport> {
    par_map_indexed(
        usize::try_from(seeds).expect("seed count fits usize"),
        |i| {
            let seed = i as u64;
            let graph = topo.build(seed).expect("topology builds");
            let arrivals = TrafficSpec {
                pattern: TrafficPattern::Poisson { lambda },
                window: spec.window,
            }
            .generate(graph.len(), seed)
            .expect("traffic spec is valid");
            let options = RunOptions {
                verify: verify_from_env(),
                trace: true, // queue/in-flight gauges feed the curves
                ..RunOptions::default()
            };
            run_streaming(topo, &arrivals, None, mode, seed, spec.horizon, options)
                .expect("streaming session runs")
        },
    )
}

#[allow(clippy::cast_precision_loss)]
fn reference(topo: &Topology, protocol: &'static str, k: usize, seeds: u64) -> Reference {
    let rounds: Vec<f64> = par_map_indexed(
        usize::try_from(seeds).expect("seed count fits usize"),
        |i| {
            let seed = i as u64;
            let workload = Workload::round_robin(topo.build(seed).expect("builds").len(), k);
            let opts = RunOptions {
                verify: verify_from_env(),
                ..RunOptions::default()
            };
            let r = match protocol {
                "coded" => {
                    run_protocol(&CodedProtocol::default(), topo, &workload, seed, opts)
                        .expect("one-shot run")
                        .rounds_total
                }
                _ => {
                    run_protocol(&BiiProtocol::default(), topo, &workload, seed, opts)
                        .expect("one-shot run")
                        .rounds_total
                }
            };
            r as f64
        },
    );
    let median_rounds = median(&rounds);
    Reference {
        topology: topo.to_string(),
        protocol,
        k,
        median_rounds,
        rate: if median_rounds > 0.0 {
            k as f64 / median_rounds
        } else {
            0.0
        },
    }
}

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.pick(2u64, 3);
    let topologies: Vec<Topology> = vec![
        Topology::Grid2d {
            rows: 4,
            cols: scale.pick(4, 6),
        },
        Topology::UnitDisk {
            n: scale.pick(16, 24),
            radius: 0.42,
        },
        Topology::Gnp {
            n: scale.pick(16, 24),
            p: 0.3,
        },
    ];
    // The horizon allows a bounded post-window drain (~2× the window):
    // below the knee queues empty well inside it, above the knee the
    // linearly growing backlog cannot drain and delivery stays partial
    // — that is what makes the knee measurable.
    let spec = SaturationSpec {
        lambdas: scale.pick(
            vec![0.0005, 0.002, 0.008, 0.032],
            vec![0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.032],
        ),
        window: scale.pick(6_000, 20_000),
        horizon: scale.pick(30_000, 80_000),
    };
    spec.validate().expect("sweep spec is valid");
    let ref_k = 12usize;

    println!("E19 (extension): streaming saturation under a Poisson λ-sweep");
    println!(
        "(3 topologies, modes seq+tdm, λ ∈ {:?}, window {} rounds, horizon {}, {} seeds)",
        spec.lambdas, spec.window, spec.horizon, seeds
    );
    println!();

    let mut refs: Vec<Reference> = Vec::new();
    let mut points: Vec<Point> = Vec::new();
    for topo in &topologies {
        refs.push(reference(topo, "coded", ref_k, seeds));
        refs.push(reference(topo, "bii", ref_k, seeds));
        for mode in [PipelineMode::Sequential, PipelineMode::Interleaved] {
            for &lambda in &spec.lambdas {
                let reports = sweep_point(topo, mode, lambda, &spec, seeds);
                points.push(summarize(topo, mode, lambda, &reports));
            }
        }
    }

    // The knee per (topology, mode): largest swept λ at which every
    // seed still delivered every packet within the horizon.
    let mut knees: Vec<(String, &'static str, Option<f64>)> = Vec::new();
    for topo in &topologies {
        for mode in [PipelineMode::Sequential, PipelineMode::Interleaved] {
            let knee = points
                .iter()
                .filter(|p| {
                    p.topology == topo.to_string() && p.mode == mode_name(mode) && p.ok == p.seeds
                })
                .map(|p| p.lambda)
                .fold(None::<f64>, |acc, l| Some(acc.map_or(l, |a: f64| a.max(l))));
            knees.push((topo.to_string(), mode_name(mode), knee));
        }
    }

    // Guardrail: below the knee there must be no packet loss. The knee
    // is *defined* as the largest fully-delivered λ, so any smaller λ
    // with ok < seeds means the delivery curve is non-monotone — a
    // protocol or horizon bug, not a saturation effect. check.sh relies
    // on this abort for its streaming smoke stage.
    for (topo, mode, knee) in &knees {
        let Some(knee) = knee else { continue };
        for p in &points {
            assert!(
                !(p.topology == *topo && p.mode == *mode && p.lambda <= *knee && p.ok < p.seeds),
                "packet loss below the knee: {topo} {mode} λ={} ok {}/{} (knee λ*={knee})",
                p.lambda,
                p.ok,
                p.seeds
            );
        }
    }

    let mut t = Table::new(&[
        "topology", "mode", "lambda", "ok", "k", "thrpt", "q_max", "q_mean", "p50", "p95", "p99",
    ]);
    for p in &points {
        t.row(&[
            p.topology.clone(),
            p.mode.to_string(),
            format!("{:.4}", p.lambda),
            format!("{}/{}", p.ok, p.seeds),
            format!("{:.0}", p.mean_k),
            format!("{:.5}", p.throughput),
            format!("{:.0}", p.queue_max),
            format!("{:.1}", p.queue_mean),
            format!("{:.0}", p.p50),
            format!("{:.0}", p.p95),
            format!("{:.0}", p.p99),
        ]);
    }
    t.print();
    println!();
    println!("reference service rates (one-shot k/T(k) ceilings):");
    for r in &refs {
        println!(
            "  {} {}: k={} median T={:.0} -> rate {:.5}",
            r.topology, r.protocol, r.k, r.median_rounds, r.rate
        );
    }
    println!("knees (largest fully-delivered λ):");
    for (topo, mode, knee) in &knees {
        match knee {
            Some(l) => println!("  {topo} {mode}: λ* = {l:.4}"),
            None => println!("  {topo} {mode}: below the smallest swept λ"),
        }
    }
    println!();
    println!("shape check: throughput tracks λ below the knee (queues bounded, p99 flat),");
    println!("then saturates at the service rate while queues and tail latency diverge;");
    println!("the tdm knee is at or below the seq knee — parity lanes halve lane rate.");

    // Deterministic JSON (no timestamps).
    let mut entries = Vec::new();
    for p in &points {
        let mut j = String::new();
        write!(
            j,
            "    {{\"topology\": \"{}\", \"mode\": \"{}\", \"lambda\": {}, \"seeds\": {}, \
             \"ok\": {}, \"mean_k\": {:.2}, \"throughput\": {:.6}, \"queue_max\": {:.1}, \
             \"queue_mean\": {:.3}, \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}}",
            p.topology,
            p.mode,
            p.lambda,
            p.seeds,
            p.ok,
            p.mean_k,
            p.throughput,
            p.queue_max,
            p.queue_mean,
            p.p50,
            p.p95,
            p.p99
        )
        .expect("write to string");
        entries.push(j);
    }
    let mut ref_entries = Vec::new();
    for r in &refs {
        ref_entries.push(format!(
            "    {{\"topology\": \"{}\", \"protocol\": \"{}\", \"k\": {}, \
             \"median_rounds\": {:.1}, \"rate\": {:.6}}}",
            r.topology, r.protocol, r.k, r.median_rounds, r.rate
        ));
    }
    let mut knee_entries = Vec::new();
    for (topo, mode, knee) in &knees {
        knee_entries.push(format!(
            "    {{\"topology\": \"{topo}\", \"mode\": \"{mode}\", \"knee_lambda\": {}}}",
            knee.map_or("null".to_string(), |l| format!("{l}"))
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"E19_saturation\",\n  \"window\": {},\n  \"horizon\": {},\n  \
         \"seeds\": {seeds},\n  \"entries\": [\n{}\n  ],\n  \"references\": [\n{}\n  ],\n  \
         \"knees\": [\n{}\n  ]\n}}\n",
        spec.window,
        spec.horizon,
        entries.join(",\n"),
        ref_entries.join(",\n"),
        knee_entries.join(",\n")
    );
    let path =
        std::env::var("KB_E19_OUT").unwrap_or_else(|_| "results/E19_saturation.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e} (printing instead)\n{json}"),
    }
}
