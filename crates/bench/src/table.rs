//! Minimal aligned-table printer for experiment output.

/// An aligned text table: headers plus rows of strings.
///
/// ```
/// use kbcast_bench::table::Table;
/// let mut t = Table::new(&["k", "rounds"]);
/// t.row(&["16".into(), "1200".into()]);
/// let s = t.render();
/// assert!(s.contains("k"));
/// assert!(s.contains("1200"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 1 decimal.
#[must_use]
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 2 decimals.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["10".into(), "2".into()]);
        t.row(&["1".into(), "20000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have equal rendered width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.257), "1.26");
        assert_eq!(f3(0.12345), "0.123");
    }
}
