//! Small statistics helpers for experiment summaries.

/// Arithmetic mean; 0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        #[allow(clippy::cast_precision_loss)]
        {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }
}

/// Median (average of the middle two for even length); 0 for empty.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in experiment data"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Least-squares slope of `y` against `x` — used to fit growth exponents
/// on log-log data ("total time grows linearly in k" ⇒ slope ≈ 1 on
/// log-log axes).
///
/// Returns 0 for fewer than two points.
#[must_use]
pub fn slope(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "slope needs paired samples");
    if x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sxx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    if sxx == 0.0 {
        0.0
    } else {
        sxy / sxx
    }
}

/// Log-log slope: fit of `ln y` against `ln x`.
///
/// # Panics
///
/// Panics if any value is non-positive.
#[must_use]
pub fn loglog_slope(x: &[f64], y: &[f64]) -> f64 {
    let lx: Vec<f64> = x
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "log-log fit needs positive values");
            v.ln()
        })
        .collect();
    let ly: Vec<f64> = y
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "log-log fit needs positive values");
            v.ln()
        })
        .collect();
    slope(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn slope_of_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        assert!((slope(&x, &y) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn loglog_slope_of_power_law() {
        let x = [1.0, 2.0, 4.0, 8.0];
        let y: Vec<f64> = x.iter().map(|v| 5.0 * v * v).collect();
        assert!((loglog_slope(&x, &y) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_slopes() {
        assert_eq!(slope(&[1.0], &[2.0]), 0.0);
        assert_eq!(slope(&[2.0, 2.0], &[1.0, 5.0]), 0.0);
    }
}
