//! Shared infrastructure for the experiment binaries (`src/bin/exp_*`)
//! that regenerate every quantitative claim of the paper — see
//! `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for
//! recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
pub mod parallel;
pub mod session;
pub mod stats;
pub mod sweep;
pub mod table;
pub mod traffic;
pub mod whp;

/// Experiment scale, selected with the `KB_SCALE` environment variable
/// (`quick` or `full`, default `full`). `quick` keeps every binary under
/// ~30 s for smoke-testing; `full` is what EXPERIMENTS.md records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweep for smoke tests.
    Quick,
    /// The full sweep recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Reads `KB_SCALE` from the environment.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("KB_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// Picks `quick` or `full` variants of a sweep parameter.
    #[must_use]
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Reads the `KB_VERIFY` environment variable: `1` turns on the online
/// model/invariant checkers ([`kbcast::runner::RunOptions::verify`])
/// for the experiment binaries that support them. Any violation then
/// aborts the sweep with the offending seed instead of contributing a
/// silently-wrong data point.
#[must_use]
pub fn verify_from_env() -> bool {
    std::env::var("KB_VERIFY").as_deref() == Ok("1")
}

/// Reads the `KB_TRACE` environment variable: `1` turns on structured
/// round tracing ([`kbcast::runner::RunOptions::trace`]) in the
/// experiment binaries that support it, and makes them dump the
/// per-round JSONL event stream and the Chrome-trace span file next to
/// their summary JSON (see `radio_net::trace`).
#[must_use]
pub fn trace_from_env() -> bool {
    std::env::var("KB_TRACE").as_deref() == Ok("1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
