//! Faulted sweeps must be bit-identical regardless of worker-thread
//! count: `par_map_indexed_with` collects in index order and every
//! per-seed session is self-contained (its own graph, workload and
//! fault-model RNG streams), so a 1-thread and a 4-thread fan-out of
//! the same faulted sweep body must agree on every report field.

use kbcast::runner::{CodedProtocol, KbcastMeta, RunOptions, Workload};
use kbcast::session::{run_protocol_on_graph, run_protocol_on_graph_with_faults, SessionReport};
use kbcast_bench::parallel::par_map_indexed_with;
use kbcast_bench::session::{merge_traces, sweep_protocol, SweepSpec};
use radio_net::faults::FaultSpec;
use radio_net::topology::Topology;

fn faulted_seed_run(fault: &FaultSpec, seed: u64) -> SessionReport<KbcastMeta> {
    let topo = Topology::Grid2d { rows: 4, cols: 4 };
    let graph = topo.build(seed).expect("topology builds");
    let workload = Workload::random(graph.len(), 4, seed);
    let faults = fault.build(graph.len(), seed).expect("spec builds");
    run_protocol_on_graph_with_faults(
        &CodedProtocol::default(),
        graph,
        &workload,
        seed,
        RunOptions::default(),
        faults,
    )
    .expect("session runs")
}

#[test]
fn faulted_sweep_is_thread_count_invariant() {
    let fault: FaultSpec = "uniform:rate=0.05+crash:frac=0.2,from=0,until=500"
        .parse()
        .expect("spec parses");
    let serial = par_map_indexed_with(1, 6, |i| faulted_seed_run(&fault, i as u64));
    let fanned = par_map_indexed_with(4, 6, |i| faulted_seed_run(&fault, i as u64));
    for (seed, (a, b)) in serial.iter().zip(&fanned).enumerate() {
        assert_eq!(a.success, b.success, "seed {seed}: success");
        assert_eq!(a.rounds_total, b.rounds_total, "seed {seed}: rounds");
        assert_eq!(
            a.delivered_fraction.to_bits(),
            b.delivered_fraction.to_bits(),
            "seed {seed}: delivered_fraction"
        );
        assert_eq!(a.stats, b.stats, "seed {seed}: stats");
        assert_eq!(a.meta, b.meta, "seed {seed}: meta");
    }
}

fn traced_seed_run(seed: u64) -> SessionReport<KbcastMeta> {
    let topo = Topology::Grid2d { rows: 4, cols: 4 };
    let graph = topo.build(seed).expect("topology builds");
    let workload = Workload::random(graph.len(), 4, seed);
    let options = RunOptions {
        trace: true,
        ..RunOptions::default()
    };
    run_protocol_on_graph(&CodedProtocol::default(), graph, &workload, seed, options)
        .expect("session runs")
}

/// [`merge_traces`] folds per-seed summaries in report (= seed) order,
/// so the merged [`radio_net::trace::TraceSummary`] — counters *and*
/// stage order — must be identical for a 1-thread and a 4-thread
/// fan-out of the same traced sweep.
#[test]
fn merged_trace_summary_is_thread_count_invariant() {
    let serial = par_map_indexed_with(1, 6, |i| traced_seed_run(i as u64));
    let fanned = par_map_indexed_with(4, 6, |i| traced_seed_run(i as u64));
    let a = merge_traces(&serial);
    let b = merge_traces(&fanned);
    assert_eq!(a, b, "merged trace summaries must not depend on threads");
    assert_eq!(a.to_json(), b.to_json(), "JSON rendering must agree too");
    assert_eq!(a.runs, 6, "every traced seed contributes one run");
    let stage_rounds: u64 = a.stages.iter().map(|s| s.rounds).sum();
    assert_eq!(stage_rounds, a.rounds, "stages partition the merged rounds");
}

/// Merging is deterministic and order-sensitive in the documented way:
/// re-merging the same reports gives the same summary, and the stage
/// list follows first appearance across the merge sequence.
#[test]
fn merge_traces_is_deterministic() {
    let reports = par_map_indexed_with(2, 4, |i| traced_seed_run(i as u64));
    let once = merge_traces(&reports);
    let twice = merge_traces(&reports);
    assert_eq!(once, twice);
    // An untraced sweep merges to the empty summary.
    let untraced = par_map_indexed_with(2, 2, |i| {
        let topo = Topology::Grid2d { rows: 4, cols: 4 };
        let graph = topo.build(i as u64).expect("topology builds");
        let workload = Workload::random(graph.len(), 4, i as u64);
        run_protocol_on_graph(
            &CodedProtocol::default(),
            graph,
            &workload,
            i as u64,
            RunOptions::default(),
        )
        .expect("session runs")
    });
    let empty = merge_traces(&untraced);
    assert_eq!(empty.runs, 0);
    assert_eq!(empty.rounds, 0);
    assert!(empty.stages.is_empty());
}

#[test]
fn sweep_spec_faults_matches_hand_rolled_sessions() {
    let topo = Topology::Grid2d { rows: 4, cols: 4 };
    let fault: FaultSpec = "jam:budget=30".parse().expect("spec parses");
    let mut spec = SweepSpec::new(&topo, 4, 3);
    spec.faults = Some(&fault);
    let swept = sweep_protocol(&CodedProtocol::default(), &spec);
    for (seed, r) in swept.iter().enumerate() {
        let solo = faulted_seed_run(&fault, seed as u64);
        assert_eq!(r.success, solo.success);
        assert_eq!(r.rounds_total, solo.rounds_total);
        assert_eq!(r.stats, solo.stats);
        assert_eq!(r.meta, solo.meta);
    }
}
