//! Streaming runs must be bit-identical regardless of worker-thread
//! count: same seed + same λ ⇒ the same arrival schedule, the same
//! delivery stamps, the same round counts — whether the sweep fans out
//! over 1 or 4 threads (`par_map_indexed_with` collects in index order
//! and every per-seed session is self-contained).

use kbcast::dynamic::{run_streaming, PipelineMode, StreamingReport};
use kbcast::runner::RunOptions;
use kbcast_bench::parallel::par_map_indexed_with;
use kbcast_bench::traffic::{TrafficPattern, TrafficSpec};
use radio_net::topology::Topology;

fn streaming_seed_run(mode: PipelineMode, seed: u64) -> StreamingReport {
    let topo = Topology::Grid2d { rows: 4, cols: 4 };
    let arrivals = TrafficSpec {
        pattern: TrafficPattern::Poisson { lambda: 0.003 },
        window: 5_000,
    }
    .generate(16, seed)
    .expect("traffic spec is valid");
    let options = RunOptions {
        trace: true,
        ..RunOptions::default()
    };
    run_streaming(&topo, &arrivals, None, mode, seed, 60_000, options).expect("session runs")
}

#[test]
fn streaming_sweep_is_thread_count_invariant() {
    for mode in [PipelineMode::Sequential, PipelineMode::Interleaved] {
        let serial = par_map_indexed_with(1, 4, |i| streaming_seed_run(mode, i as u64));
        let fanned = par_map_indexed_with(4, 4, |i| streaming_seed_run(mode, i as u64));
        for (seed, (a, b)) in serial.iter().zip(&fanned).enumerate() {
            assert_eq!(a.success, b.success, "{mode:?} seed {seed}: success");
            assert_eq!(a.k, b.k, "{mode:?} seed {seed}: k");
            assert_eq!(
                a.rounds_total, b.rounds_total,
                "{mode:?} seed {seed}: rounds"
            );
            assert_eq!(a.batches, b.batches, "{mode:?} seed {seed}: epoch records");
            assert_eq!(
                a.latencies, b.latencies,
                "{mode:?} seed {seed}: per-packet latencies"
            );
            assert_eq!(
                a.collect_closes, b.collect_closes,
                "{mode:?} seed {seed}: collection closes"
            );
            assert_eq!(
                a.delivered_fraction.to_bits(),
                b.delivered_fraction.to_bits(),
                "{mode:?} seed {seed}: delivered_fraction"
            );
            assert_eq!(a.stats, b.stats, "{mode:?} seed {seed}: stats");
            let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
            assert_eq!(
                ta.queue_curve, tb.queue_curve,
                "{mode:?} seed {seed}: queue curve"
            );
            assert_eq!(
                ta.queue_stats, tb.queue_stats,
                "{mode:?} seed {seed}: queue stats"
            );
            assert_eq!(
                ta.in_flight_curve, tb.in_flight_curve,
                "{mode:?} seed {seed}: in-flight curve"
            );
        }
    }
}
