//! Criterion benchmarks of the four protocol stages in isolation
//! (simulator wall-clock per stage, small fixed networks).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kbcast::packet::Packet;
use kbcast::stage3::CollectState;
use kbcast::stage4::DissemState;
use kbcast::Config;
use protocols::bfs::{BfsConfig, BfsNode};
use protocols::leader::{ElectionNode, LeaderConfig};
use protocols::timing;
use radio_net::engine::Engine;
use radio_net::graph::NodeId;
use radio_net::rng;
use radio_net::topology::Topology;

fn bench_leader_election(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage1_leader");
    g.sample_size(10);
    let topo = Topology::Gnp { n: 48, p: 0.15 };
    let graph = topo.build(1).unwrap();
    let delta = graph.max_degree();
    let d = graph.diameter().unwrap();
    let cfg = LeaderConfig {
        id_bits: 6,
        window_rounds: timing::epidemic_window_rounds(48, d, delta, 3),
        delta_bound: delta,
    };
    g.bench_function("gnp48_full_election", |b| {
        b.iter_batched(
            || {
                let nodes: Vec<ElectionNode> = (0..48)
                    .map(|i| ElectionNode::new(cfg, i as u64, i % 5 == 0, rng::stream(1, i as u64)))
                    .collect();
                let awake: Vec<NodeId> = (0..48).filter(|i| i % 5 == 0).map(NodeId::new).collect();
                Engine::new(graph.clone(), nodes, awake).unwrap()
            },
            |mut e| {
                e.run(cfg.total_rounds());
                e.round()
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage2_bfs");
    g.sample_size(10);
    let topo = Topology::Grid2d { rows: 8, cols: 8 };
    let graph = topo.build(0).unwrap();
    let cfg = BfsConfig {
        phase_rounds: (3 * timing::log_n(64) * timing::epoch_len(4)) as u64,
        d_bound: 14,
        delta_bound: 4,
    };
    g.bench_function("grid8x8_full_bfs", |b| {
        b.iter_batched(
            || {
                let nodes: Vec<BfsNode> = (0..64)
                    .map(|i| BfsNode::new(cfg, i as u64, i == 0, rng::stream(0, i as u64)))
                    .collect();
                Engine::new(graph.clone(), nodes, [NodeId::new(0)]).unwrap()
            },
            |mut e| {
                e.run(cfg.total_rounds());
                e.round()
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_state_machines(c: &mut Criterion) {
    // Pure state-machine throughput (no engine): how fast can a node be
    // polled through a collection phase / a dissemination phase?
    let cfg = Config::for_network(256, 8, 16);
    c.bench_function("stage3_collect_poll_10k", |b| {
        b.iter_batched(
            || {
                let packets: Vec<Packet> = (0..64)
                    .map(|i| Packet::new(1, i, vec![i as u8; 16]))
                    .collect();
                (
                    CollectState::new(cfg, 1, false, Some(0), packets, 0),
                    rng::stream(0, 1),
                )
            },
            |(mut st, mut rng)| {
                for r in 0..10_000u64 {
                    let _ = st.poll(r, &mut rng);
                }
                st.has_unacked()
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("stage4_root_poll_10k", |b| {
        b.iter_batched(
            || {
                let packets: Vec<Packet> = (0..256)
                    .map(|i| Packet::new(1, i, vec![i as u8; 16]))
                    .collect();
                (DissemState::new_root(cfg, packets), rng::stream(0, 2))
            },
            |(mut st, mut rng)| {
                let mut sent = 0u32;
                for r in 0..10_000u64 {
                    if st.poll(r, &mut rng).is_some() {
                        sent += 1;
                    }
                }
                sent
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_leader_election,
    bench_bfs,
    bench_state_machines
);
criterion_main!(benches);
