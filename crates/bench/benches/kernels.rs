//! Criterion wall-clock benchmarks of the computational kernels and of
//! end-to-end simulations. Round-count results (the paper's metric) come
//! from the `exp_*` binaries; these benches track the *simulator's* own
//! performance so regressions in the hot paths are caught.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gf2::bitvec::BitVec;
use gf2::decoder::Decoder;
use gf2::matrix::BitMatrix;
use kbcast::baseline::run_bii;
use kbcast::runner::{run, Workload};
use kbcast::stage3::schedule;
use kbcast::Config;
use kbcast_bench::micro::forward_once;
use protocols::epidemic::EpidemicNode;
use radio_net::engine::Engine;
use radio_net::graph::NodeId;
use radio_net::rng;
use radio_net::topology::Topology;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_gf2(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf2");
    g.bench_function("rank_64x64", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter_batched(
            || BitMatrix::random(64, 64, &mut rng),
            |m| m.rank(),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("decoder_fill_w16", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        let group: Vec<Vec<u8>> = (0..16).map(|i| vec![i as u8; 64]).collect();
        b.iter(|| {
            let mut d = Decoder::new(16, 64);
            while !d.is_complete() {
                let coeffs = BitVec::random_nonzero(16, &mut rng);
                let mut payload = vec![0u8; 64];
                for i in coeffs.iter_ones() {
                    for (a, b) in payload.iter_mut().zip(&group[i]) {
                        *a ^= b;
                    }
                }
                d.insert(coeffs, payload);
            }
            d.decode().unwrap()
        });
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    // Raw round throughput: epidemic broadcast on G(256, ·).
    g.bench_function("epidemic_gnp256_64rounds", |b| {
        let topo = Topology::Gnp { n: 256, p: 0.04 };
        let graph = topo.build(1).unwrap();
        let delta = graph.max_degree();
        b.iter_batched(
            || {
                let nodes: Vec<EpidemicNode> = (0..256)
                    .map(|i| {
                        EpidemicNode::new(delta, (i == 0).then_some(7), rng::stream(1, i as u64))
                    })
                    .collect();
                Engine::new(graph.clone(), nodes, [NodeId::new(0)]).unwrap()
            },
            |mut e| {
                e.run(64);
                e.stats().receptions
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("kbcast_n32_k64", |b| {
        let topo = Topology::Gnp { n: 32, p: 0.22 };
        let w = Workload::random(32, 64, 3);
        b.iter(|| {
            let r = run(&topo, &w, None, 3).unwrap();
            assert!(r.success);
            r.rounds_total
        });
    });
    g.bench_function("bii_n32_k64", |b| {
        let topo = Topology::Gnp { n: 32, p: 0.22 };
        let w = Workload::random(32, 64, 3);
        b.iter(|| run_bii(&topo, &w, None, 3).unwrap().rounds_total);
    });
    g.bench_function("forward_layer_t8_m8", |b| {
        b.iter(|| forward_once(8, 8, 8, 32, 40, 8, 1).decoded_fraction);
    });
    g.finish();
}

fn bench_schedule_and_topology(c: &mut Criterion) {
    let cfg = Config::for_network(1 << 16, 64, 32);
    c.bench_function("grab_schedule_x1M", |b| {
        b.iter(|| schedule::grab_schedule(1 << 20, &cfg).len());
    });
    c.bench_function("topology_gnp_512", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Topology::Gnp { n: 512, p: 0.03 }
                .build(seed)
                .unwrap()
                .edge_count()
        });
    });
}

criterion_group!(
    benches,
    bench_gf2,
    bench_engine,
    bench_end_to_end,
    bench_schedule_and_topology
);
criterion_main!(benches);
