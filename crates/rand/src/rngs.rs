//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256++ (Blackman–Vigna),
/// the algorithm behind the real `rand::rngs::SmallRng` on 64-bit
/// targets. Statistically excellent for simulation workloads; not
/// suitable for cryptography.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SmallRng::from_seed([0; 32]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn known_good_mixing() {
        // Successive outputs from a fixed seed must differ in many bits.
        let mut r = SmallRng::seed_from_u64(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert!((a ^ b).count_ones() >= 16);
    }
}
