//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the real `rand` cannot be fetched. This crate implements exactly the
//! API subset the workspace uses — [`Rng`], [`SeedableRng`],
//! [`rngs::SmallRng`], [`seq::SliceRandom`] and
//! [`distributions::Standard`] — with the same signatures, so the
//! simulator code is written against the upstream API and would compile
//! unchanged against the real crate.
//!
//! [`rngs::SmallRng`] is xoshiro256++ seeded through SplitMix64, the same
//! generator family the real `SmallRng` uses on 64-bit platforms. All
//! streams are fully deterministic in the seed; nothing here reads OS
//! entropy (`from_entropy` is deliberately absent — every simulation in
//! this workspace must be reproducible from a `u64`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{DistIter, Distribution, Standard};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// (the conventional seed-expansion finalizer, as in upstream
    /// `rand_core`).
    #[must_use]
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = sm.next().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} not in [0, 1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// Samples a value from `distr`.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Converts the generator into an infinite iterator of samples from
    /// `distr`.
    fn sample_iter<T, D>(self, distr: D) -> DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distr.sample_iter(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply map of 64 uniform bits onto the span;
                // bias is < span/2^64, far below anything a simulation
                // experiment can resolve.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as $t;
                self.start.wrapping_add(hi)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as $t;
                start.wrapping_add(hi)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seed_determinism() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
