//! Sampling distributions (the subset the workspace uses: [`Standard`]).

use crate::RngCore;

/// Maps uniform bits from an [`RngCore`] to values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

    /// Converts `rng` into an infinite iterator of samples.
    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        R: RngCore,
        Self: Sized,
    {
        DistIter {
            distr: self,
            rng,
            _marker: core::marker::PhantomData,
        }
    }
}

/// The "natural" uniform distribution of a type: full range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Infinite iterator of samples, returned by
/// [`Distribution::sample_iter`] / `Rng::sample_iter`.
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: core::marker::PhantomData<fn() -> T>,
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn float_samples_are_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = Standard.sample(&mut r);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn sample_iter_is_infinite_and_deterministic() {
        let a: Vec<u32> = Standard
            .sample_iter(SmallRng::seed_from_u64(5))
            .take(8)
            .collect();
        let b: Vec<u32> = Standard
            .sample_iter(SmallRng::seed_from_u64(5))
            .take(8)
            .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }
}
