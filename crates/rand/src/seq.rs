//! Sequence utilities ([`SliceRandom`]).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the identity permutation is vanishingly
        // unlikely.
        assert_ne!(v, sorted);
    }

    #[test]
    fn choose_handles_empty_and_unit() {
        let mut r = SmallRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut r), None);
        assert_eq!([42u8].choose(&mut r), Some(&42));
    }
}
