//! Compact bit-vectors over 64-bit words.

use std::fmt;

use rand::Rng;

/// A fixed-length vector over GF(2), stored LSB-first in 64-bit words.
///
/// Used as the coefficient header of coded packets: bit `i` says whether
/// source packet `i` of the group participates in the XOR.
///
/// ```
/// use gf2::bitvec::BitVec;
///
/// let mut v = BitVec::zeros(10);
/// v.set(3, true);
/// v.set(7, true);
/// assert_eq!(v.count_ones(), 2);
/// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![3, 7]);
/// assert_eq!(v.to_string(), "0001000100");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// An all-zero vector of `len` bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds a vector of `len ≤ 64` bits from the low bits of `bits`
    /// (bit `i` of `bits` becomes element `i`).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    #[must_use]
    pub fn from_lsb_bits(bits: u64, len: usize) -> Self {
        assert!(len <= 64, "from_lsb_bits supports at most 64 bits");
        let mut v = BitVec::zeros(len);
        if len > 0 {
            let mask = if len == 64 {
                u64::MAX
            } else {
                (1u64 << len) - 1
            };
            if !v.words.is_empty() {
                v.words[0] = bits & mask;
            }
        }
        v
    }

    /// A unit vector: all zeros except bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn unit(len: usize, i: usize) -> Self {
        let mut v = BitVec::zeros(len);
        v.set(i, true);
        v
    }

    /// A uniformly random vector (each bit independently 1 with
    /// probability ½) — the paper's coding coefficient distribution.
    #[must_use]
    pub fn random(len: usize, rng: &mut impl Rng) -> Self {
        let mut v = BitVec::zeros(len);
        for w in &mut v.words {
            *w = rng.gen();
        }
        v.mask_tail();
        v
    }

    /// A uniformly random *nonzero* vector: [`BitVec::random`]
    /// conditioned on not being all-zero (resampled; ≤ 2 expected draws
    /// even at `len == 1`). Senders use this because the all-zero
    /// combination carries no information — a transmission the paper's
    /// analysis tolerates but an implementation has no reason to make.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` (no nonzero vector exists).
    #[must_use]
    pub fn random_nonzero(len: usize, rng: &mut impl Rng) -> Self {
        assert!(len > 0, "no nonzero vector of length 0 exists");
        loop {
            let v = BitVec::random(len, rng);
            if !v.is_zero() {
                return v;
            }
        }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector has zero length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// XORs `other` into `self` (vector addition over GF(2)).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in xor_assign");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// `true` if every bit is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Index of the lowest set bit, or `None` if zero.
    #[must_use]
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The backing words, LSB-first (bit `i` of the vector is bit
    /// `i % 64` of word `i / 64`). Bits beyond `len` in the last word
    /// are zero.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Zeroes any bits beyond `len` in the last word (invariant repair
    /// after whole-word writes).
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Calls `f` with `base + b` for every set bit `b` of `word`,
/// ascending. The word-at-a-time idiom behind [`BitVec::iter_ones`],
/// exported for callers that keep raw `u64` bit-planes (e.g. the
/// word-parallel engine sets in `radio_net`) and want the iteration
/// without the `BitVec` length invariants.
#[inline]
pub fn for_each_one(mut word: u64, base: usize, mut f: impl FnMut(usize)) {
    while word != 0 {
        f(base + word.trailing_zeros() as usize);
        word &= word - 1;
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec({self})")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        let mut v = BitVec::zeros(bits.len());
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_is_zero() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert!(v.is_zero());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.first_one(), None);
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut v = BitVec::zeros(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = BitVec::zeros(3).get(3);
    }

    #[test]
    fn unit_vector() {
        let v = BitVec::unit(10, 4);
        assert_eq!(v.count_ones(), 1);
        assert!(v.get(4));
        assert_eq!(v.first_one(), Some(4));
    }

    #[test]
    fn from_lsb_bits_matches_bit_pattern() {
        let v = BitVec::from_lsb_bits(0b1011, 5);
        assert_eq!(v.to_string(), "11010");
        let full = BitVec::from_lsb_bits(u64::MAX, 64);
        assert_eq!(full.count_ones(), 64);
        let empty = BitVec::from_lsb_bits(0b111, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn xor_assign_is_gf2_addition() {
        let a = BitVec::from_lsb_bits(0b1100, 4);
        let b = BitVec::from_lsb_bits(0b1010, 4);
        let mut c = a.clone();
        c.xor_assign(&b);
        assert_eq!(c, BitVec::from_lsb_bits(0b0110, 4));
        // x + x = 0
        let mut d = a.clone();
        d.xor_assign(&a);
        assert!(d.is_zero());
    }

    #[test]
    fn iter_ones_ascending() {
        let mut v = BitVec::zeros(200);
        for i in [5, 64, 70, 199] {
            v.set(i, true);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![5, 64, 70, 199]);
    }

    #[test]
    fn for_each_one_matches_iter_ones_per_word() {
        let mut v = BitVec::zeros(200);
        for i in [5, 64, 70, 199] {
            v.set(i, true);
        }
        let mut got = Vec::new();
        for (wi, &w) in v.words().iter().enumerate() {
            for_each_one(w, wi * 64, |i| got.push(i));
        }
        assert_eq!(got, v.iter_ones().collect::<Vec<_>>());
    }

    #[test]
    fn random_respects_length_invariant() {
        let mut rng = SmallRng::seed_from_u64(1);
        for len in [0, 1, 63, 64, 65, 100] {
            let v = BitVec::random(len, &mut rng);
            assert_eq!(v.len(), len);
            // No stray bits above len (count_ones over logical range only).
            assert!(v.iter_ones().all(|i| i < len));
        }
    }

    #[test]
    fn random_is_roughly_balanced() {
        let mut rng = SmallRng::seed_from_u64(7);
        let v = BitVec::random(10_000, &mut rng);
        let ones = v.count_ones();
        assert!((4_000..6_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn from_iterator() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.to_string(), "101");
    }

    proptest! {
        #[test]
        fn prop_xor_is_commutative(a in proptest::collection::vec(any::<bool>(), 0..200),
                                   b_seed in any::<u64>()) {
            let len = a.len();
            let a: BitVec = a.into_iter().collect();
            let mut rng = SmallRng::seed_from_u64(b_seed);
            let b = BitVec::random(len, &mut rng);
            let mut ab = a.clone();
            ab.xor_assign(&b);
            let mut ba = b.clone();
            ba.xor_assign(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn prop_xor_self_inverse(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
            let a: BitVec = bits.into_iter().collect();
            let mut twice = a.clone();
            twice.xor_assign(&a);
            prop_assert!(twice.is_zero());
        }

        #[test]
        fn prop_first_one_matches_iter(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
            let v: BitVec = bits.into_iter().collect();
            prop_assert_eq!(v.first_one(), v.iter_ones().next());
        }

        #[test]
        fn prop_count_matches_iter(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
            let v: BitVec = bits.clone().into_iter().collect();
            prop_assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
            prop_assert_eq!(v.count_ones(), v.iter_ones().count());
        }
    }
}
