//! Wire representation of coded packets and the random-subset encoder.

use rand::Rng;

use crate::bitvec::BitVec;

/// A coded packet as it travels on the radio channel: the coefficient
/// header (which group members are XORed in) plus the combined payload.
///
/// The paper bounds the header at `⌈log n⌉` bits and the payload at `b`
/// bits, so a coded message is at most twice the size of a plain packet;
/// [`CodedPacket::size_bits`] exposes exactly that accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodedPacket {
    /// Selection bit-vector over the group (length = group size `w`).
    pub coefficients: BitVec,
    /// XOR of the selected packets' payloads, padded to the group's
    /// payload length.
    pub payload: Vec<u8>,
}

impl CodedPacket {
    /// Size on the channel: header bits + payload bits.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.coefficients.len() + self.payload.len() * 8
    }
}

/// XORs the group members selected by `coefficients` into a fresh payload
/// buffer sized to the longest group member.
///
/// # Panics
///
/// Panics if `coefficients.len() != group.len()`.
#[must_use]
pub fn encode_subset(coefficients: &BitVec, group: &[Vec<u8>]) -> CodedPacket {
    assert_eq!(
        coefficients.len(),
        group.len(),
        "coefficient length must equal group size"
    );
    let len = group.iter().map(Vec::len).max().unwrap_or(0);
    let mut payload = vec![0u8; len];
    for i in coefficients.iter_ones() {
        for (a, b) in payload.iter_mut().zip(&group[i]) {
            *a ^= b;
        }
    }
    CodedPacket {
        coefficients: coefficients.clone(),
        payload,
    }
}

/// Draws the paper's coding distribution — each group member selected
/// independently with probability ½ — and encodes it.
///
/// The all-zero selection is allowed (it transmits a zero payload); it is
/// simply a redundant row at every receiver, exactly as analyzed.
#[must_use]
pub fn encode_random(group: &[Vec<u8>], rng: &mut impl Rng) -> CodedPacket {
    let coefficients = BitVec::random(group.len(), rng);
    encode_subset(&coefficients, group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn encode_subset_xors_selected_members() {
        let group = vec![vec![0b1111_0000u8], vec![0b0000_1111], vec![0b1010_1010]];
        let c = BitVec::from_lsb_bits(0b101, 3);
        let p = encode_subset(&c, &group);
        assert_eq!(p.payload, vec![0b1111_0000 ^ 0b1010_1010]);
    }

    #[test]
    fn encode_pads_to_longest_member() {
        let group = vec![vec![1u8], vec![2u8, 3u8]];
        let c = BitVec::from_lsb_bits(0b11, 2);
        let p = encode_subset(&c, &group);
        assert_eq!(p.payload, vec![1 ^ 2, 3]);
    }

    #[test]
    fn empty_selection_gives_zero_payload() {
        let group = vec![vec![7u8], vec![9u8]];
        let p = encode_subset(&BitVec::zeros(2), &group);
        assert_eq!(p.payload, vec![0]);
    }

    #[test]
    fn size_bits_counts_header_and_payload() {
        let group = vec![vec![0u8; 4]; 10];
        let p = encode_subset(&BitVec::zeros(10), &group);
        assert_eq!(p.size_bits(), 10 + 32);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn encode_rejects_length_mismatch() {
        let _ = encode_subset(&BitVec::zeros(2), &[vec![1u8]]);
    }

    #[test]
    fn random_encoding_roundtrips_through_decoder() {
        let mut rng = SmallRng::seed_from_u64(4);
        let group: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i, i ^ 0x5A, 3]).collect();
        let mut d = Decoder::new(8, 3);
        for _ in 0..200 {
            if d.is_complete() {
                break;
            }
            let p = encode_random(&group, &mut rng);
            d.insert(p.coefficients, p.payload);
        }
        assert_eq!(d.decode().unwrap(), group);
    }
}
