//! Incremental random-linear-code decoding by online Gaussian elimination.

use std::fmt;

use crate::bitvec::BitVec;

/// Outcome of feeding one coded row to a [`Decoder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Insert {
    /// The row increased the decoder's rank (now `rank`).
    Innovative {
        /// Rank after the insertion.
        rank: usize,
    },
    /// The row was a linear combination of rows already held.
    Redundant,
}

/// Online decoder for one packet group coded over GF(2).
///
/// A *group* is `w` source packets, each padded to `payload_len` bytes.
/// Senders transmit `(coefficient bit-vector, XOR of selected packets)`
/// pairs; the decoder maintains the received rows in reduced row-echelon
/// form, so a group is decodable exactly when the rank reaches `w`, and
/// decoding is then a plain read-out.
///
/// This is the receiver side of the paper's `FORWARD` sub-routine: Lemma 6
/// argues a node receives `O(log n)` random rows per phase and, by Lemma 3,
/// those reach full rank w.h.p.
///
/// ```
/// use gf2::bitvec::BitVec;
/// use gf2::decoder::{Decoder, Insert};
///
/// let mut d = Decoder::new(2, 1);
/// assert_eq!(
///     d.insert(BitVec::from_lsb_bits(0b11, 2), vec![0xA ^ 0xB]),
///     Insert::Innovative { rank: 1 }
/// );
/// assert_eq!(
///     d.insert(BitVec::from_lsb_bits(0b11, 2), vec![0xA ^ 0xB]),
///     Insert::Redundant
/// );
/// d.insert(BitVec::from_lsb_bits(0b01, 2), vec![0xA]);
/// assert_eq!(d.decode().unwrap(), vec![vec![0xA], vec![0xB]]);
/// ```
#[derive(Clone)]
pub struct Decoder {
    /// `pivot[i]` holds the row whose leading 1 is in column `i`.
    pivot: Vec<Option<Row>>,
    payload_len: usize,
    rank: usize,
    rows_seen: usize,
}

#[derive(Clone)]
struct Row {
    coeffs: BitVec,
    payload: Vec<u8>,
}

impl Row {
    fn xor_assign(&mut self, other: &Row) {
        self.coeffs.xor_assign(&other.coeffs);
        for (a, b) in self.payload.iter_mut().zip(&other.payload) {
            *a ^= b;
        }
    }
}

impl Decoder {
    /// A decoder for a group of `w` packets of `payload_len` bytes each.
    #[must_use]
    pub fn new(w: usize, payload_len: usize) -> Self {
        Decoder {
            pivot: vec![None; w],
            payload_len,
            rank: 0,
            rows_seen: 0,
        }
    }

    /// Group size `w`.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.pivot.len()
    }

    /// Current rank (number of linearly independent rows held).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of rows fed in, including redundant ones.
    #[must_use]
    pub fn rows_seen(&self) -> usize {
        self.rows_seen
    }

    /// `true` once all `w` packets are recoverable.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.rank == self.pivot.len()
    }

    /// Feeds one coded row. Payloads shorter than `payload_len` are
    /// zero-padded (XOR with nothing); longer ones are a caller bug.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != w` or `payload.len() > payload_len`.
    pub fn insert(&mut self, coeffs: BitVec, payload: Vec<u8>) -> Insert {
        assert_eq!(
            coeffs.len(),
            self.group_size(),
            "coefficient vector length must equal the group size"
        );
        assert!(
            payload.len() <= self.payload_len,
            "payload longer than the decoder's payload_len"
        );
        self.rows_seen += 1;
        let mut row = Row {
            coeffs,
            payload: {
                let mut p = payload;
                p.resize(self.payload_len, 0);
                p
            },
        };

        // Forward-reduce by existing pivots.
        while let Some(lead) = row.coeffs.first_one() {
            match &self.pivot[lead] {
                Some(p) => row.xor_assign(p),
                None => {
                    // Clear the new row's non-leading bits that sit in
                    // existing pivot columns (each XOR permanently clears
                    // one such column: pivot rows are zero in all other
                    // pivot columns, and have no bits below their own
                    // pivot, so `lead` stays the leading bit).
                    loop {
                        let hit = row
                            .coeffs
                            .iter_ones()
                            .find(|&j| j != lead && self.pivot[j].is_some());
                        match hit {
                            Some(j) => {
                                let p = self.pivot[j].clone().expect("checked above");
                                row.xor_assign(&p);
                            }
                            None => break,
                        }
                    }
                    // Back-substitute into existing rows that have a 1 in
                    // this column to keep RREF.
                    for other in self.pivot.iter_mut().flatten() {
                        if other.coeffs.get(lead) {
                            other.xor_assign(&row);
                        }
                    }
                    self.pivot[lead] = Some(row);
                    self.rank += 1;
                    return Insert::Innovative { rank: self.rank };
                }
            }
        }
        Insert::Redundant
    }

    /// Returns the decoded packets once complete, in group order.
    /// `None` while rank < `w`.
    #[must_use]
    pub fn decode(&self) -> Option<Vec<Vec<u8>>> {
        if !self.is_complete() {
            return None;
        }
        Some(
            self.pivot
                .iter()
                .map(|p| {
                    let row = p.as_ref().expect("complete decoder has all pivots");
                    debug_assert_eq!(row.coeffs.count_ones(), 1, "RREF invariant");
                    row.payload.clone()
                })
                .collect(),
        )
    }

    /// The single decoded packet at `index`, available as soon as that
    /// pivot row has been fully reduced to a unit vector (which, in RREF,
    /// happens exactly when the decoder is complete for partial groups;
    /// exposed for early read-out of already-isolated packets).
    ///
    /// # Panics
    ///
    /// Panics if `index >= w`.
    #[must_use]
    pub fn packet(&self, index: usize) -> Option<&[u8]> {
        let row = self.pivot[index].as_ref()?;
        if row.coeffs.count_ones() == 1 {
            Some(&row.payload)
        } else {
            None
        }
    }
}

impl fmt::Debug for Decoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Decoder")
            .field("w", &self.group_size())
            .field("rank", &self.rank)
            .field("rows_seen", &self.rows_seen)
            .field("payload_len", &self.payload_len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sample_group(rng: &mut impl Rng, w: usize, len: usize) -> Vec<Vec<u8>> {
        (0..w)
            .map(|_| (0..len).map(|_| rng.gen()).collect())
            .collect()
    }

    fn encode(group: &[Vec<u8>], coeffs: &BitVec, len: usize) -> Vec<u8> {
        let mut payload = vec![0u8; len];
        for i in coeffs.iter_ones() {
            for (a, b) in payload.iter_mut().zip(&group[i]) {
                *a ^= b;
            }
        }
        payload
    }

    #[test]
    fn unit_rows_decode_immediately() {
        let mut rng = SmallRng::seed_from_u64(1);
        let group = sample_group(&mut rng, 4, 8);
        let mut d = Decoder::new(4, 8);
        for i in [2, 0, 3, 1] {
            let c = BitVec::unit(4, i);
            assert!(matches!(
                d.insert(c.clone(), encode(&group, &c, 8)),
                Insert::Innovative { .. }
            ));
        }
        assert_eq!(d.decode().unwrap(), group);
    }

    #[test]
    fn random_rows_decode_with_overhead() {
        let mut rng = SmallRng::seed_from_u64(2);
        let w = 10;
        let group = sample_group(&mut rng, w, 16);
        let mut d = Decoder::new(w, 16);
        let mut rows = 0;
        while !d.is_complete() {
            let c = BitVec::random(w, &mut rng);
            let p = encode(&group, &c, 16);
            d.insert(c, p);
            rows += 1;
            assert!(rows < 200, "decoder failed to converge");
        }
        assert_eq!(d.decode().unwrap(), group);
        assert_eq!(d.rows_seen(), rows);
    }

    #[test]
    fn redundant_rows_do_not_change_rank() {
        let mut d = Decoder::new(3, 1);
        let a = BitVec::from_lsb_bits(0b011, 3);
        let b = BitVec::from_lsb_bits(0b110, 3);
        let mut ab = a.clone();
        ab.xor_assign(&b);
        d.insert(a, vec![1]);
        d.insert(b, vec![2]);
        assert_eq!(d.insert(ab, vec![3]), Insert::Redundant);
        assert_eq!(d.rank(), 2);
        assert!(!d.is_complete());
        assert_eq!(d.decode(), None);
    }

    #[test]
    fn zero_row_is_redundant() {
        let mut d = Decoder::new(3, 1);
        assert_eq!(d.insert(BitVec::zeros(3), vec![0]), Insert::Redundant);
        assert_eq!(d.rank(), 0);
    }

    #[test]
    fn short_payload_is_padded() {
        let mut d = Decoder::new(1, 4);
        d.insert(BitVec::unit(1, 0), vec![0xFF]);
        assert_eq!(d.decode().unwrap(), vec![vec![0xFF, 0, 0, 0]]);
    }

    #[test]
    fn empty_group_is_trivially_complete() {
        let d = Decoder::new(0, 4);
        assert!(d.is_complete());
        assert_eq!(d.decode().unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn wrong_coeff_length_panics() {
        Decoder::new(3, 1).insert(BitVec::zeros(2), vec![0]);
    }

    #[test]
    fn packet_early_readout() {
        let mut d = Decoder::new(2, 1);
        d.insert(BitVec::unit(2, 1), vec![9]);
        assert_eq!(d.packet(1), Some(&[9u8][..]));
        assert_eq!(d.packet(0), None);
    }

    #[test]
    fn rank_deficient_subspace_never_decodes() {
        // Rows drawn only from the subspace missing coordinate 4: no
        // amount of redundancy can complete the decoder, and the rank
        // saturates strictly below w.
        let mut rng = SmallRng::seed_from_u64(7);
        let w = 5;
        let group = sample_group(&mut rng, w, 4);
        let mut d = Decoder::new(w, 4);
        for _ in 0..50 {
            let mut c = BitVec::random(w, &mut rng);
            if c.get(4) {
                c.xor_assign(&BitVec::unit(w, 4));
            }
            let p = encode(&group, &c, 4);
            d.insert(c, p);
        }
        assert_eq!(d.rank(), 4, "subspace rank saturates at w - 1");
        assert!(!d.is_complete());
        assert_eq!(d.decode(), None);
        // The missing coordinate is exactly what unblocks it.
        let c = BitVec::unit(w, 4);
        let p = encode(&group, &c, 4);
        assert_eq!(d.insert(c, p), Insert::Innovative { rank: 5 });
        assert_eq!(d.decode().unwrap(), group);
    }

    #[test]
    fn duplicate_rows_raise_rows_seen_but_not_rank() {
        let mut rng = SmallRng::seed_from_u64(8);
        let group = sample_group(&mut rng, 4, 2);
        let c = BitVec::from_lsb_bits(0b1011, 4);
        let p = encode(&group, &c, 2);
        let mut d = Decoder::new(4, 2);
        assert_eq!(
            d.insert(c.clone(), p.clone()),
            Insert::Innovative { rank: 1 }
        );
        for _ in 0..9 {
            assert_eq!(d.insert(c.clone(), p.clone()), Insert::Redundant);
        }
        assert_eq!(d.rank(), 1);
        assert_eq!(d.rows_seen(), 10);
    }

    #[test]
    fn single_packet_group_is_the_degenerate_code() {
        // w = 1 is what every group becomes under the uncoded ablation
        // (group_size_override = 1): the only non-zero coefficient
        // vector is the unit, so one reception decodes.
        let mut d = Decoder::new(1, 3);
        assert!(!d.is_complete());
        assert_eq!(d.decode(), None);
        assert_eq!(
            d.insert(BitVec::unit(1, 0), vec![1, 2, 3]),
            Insert::Innovative { rank: 1 }
        );
        assert!(d.is_complete());
        assert_eq!(d.decode().unwrap(), vec![vec![1, 2, 3]]);
        // Further copies are pure redundancy.
        assert_eq!(
            d.insert(BitVec::unit(1, 0), vec![1, 2, 3]),
            Insert::Redundant
        );
    }

    proptest! {
        /// Any full-rank sequence of rows decodes to the original group,
        /// regardless of redundancy and order.
        #[test]
        fn prop_decode_recovers_group(seed in any::<u64>(), w in 1usize..12, len in 1usize..20) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let group = sample_group(&mut rng, w, len);
            let mut d = Decoder::new(w, len);
            // Mix random rows with occasional unit rows; cap iterations.
            for i in 0..(8 * w + 64) {
                if d.is_complete() {
                    break;
                }
                let c = if i % 5 == 4 {
                    BitVec::unit(w, i % w)
                } else {
                    BitVec::random(w, &mut rng)
                };
                let p = encode(&group, &c, len);
                d.insert(c, p);
            }
            prop_assert!(d.is_complete());
            prop_assert_eq!(d.decode().unwrap(), group);
        }

        /// Rank never exceeds rows seen nor the group size, and is
        /// monotone under insertion.
        #[test]
        fn prop_rank_bounds(seed in any::<u64>(), w in 1usize..10) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let group = sample_group(&mut rng, w, 4);
            let mut d = Decoder::new(w, 4);
            let mut prev = 0;
            for _ in 0..20 {
                let c = BitVec::random(w, &mut rng);
                let p = encode(&group, &c, 4);
                d.insert(c, p);
                prop_assert!(d.rank() >= prev);
                prop_assert!(d.rank() <= d.rows_seen());
                prop_assert!(d.rank() <= w);
                prev = d.rank();
            }
        }
    }
}
