//! # gf2
//!
//! GF(2) linear algebra for **random linear network coding**, as used in
//! Stage 4 of Khabbazian & Kowalski's multiple-message broadcast (PODC
//! 2011). The paper's coding scheme picks each source packet independently
//! with probability ½ and transmits the XOR of the chosen packets together
//! with the selection bit-vector; a receiver reconstructs the packet group
//! once its received coefficient vectors span GF(2)^w (Lemma 3 of the
//! paper bounds how many random rows that takes).
//!
//! * [`bitvec::BitVec`] — compact bit-vectors (the coefficient headers).
//! * [`matrix::BitMatrix`] — dense GF(2) matrices with rank / row
//!   reduction, plus uniform random sampling for the Lemma 3 experiment.
//! * [`decoder::Decoder`] — incremental Gaussian elimination over coded
//!   payloads: insert `(coefficients, payload)` rows as they arrive and
//!   read the decoded packets out the moment rank `w` is reached.
//! * [`coded`] — the wire representation of a coded packet and the random
//!   subset encoder.
//!
//! The paper phrases the payload combination as addition in a finite field
//! `F(2^b)`; with {0,1} coefficients that is exactly byte-wise XOR, which
//! is what this crate implements.
//!
//! ## Example: code and decode a group of packets
//!
//! ```
//! use gf2::coded::encode_subset;
//! use gf2::decoder::Decoder;
//! use gf2::bitvec::BitVec;
//!
//! let group: Vec<Vec<u8>> = vec![b"alpha".to_vec(), b"bravo".to_vec(), b"charl".to_vec()];
//! let mut decoder = Decoder::new(group.len(), 5);
//!
//! // Deliver three random-looking combinations plus a redundant one.
//! for mask in [0b011u32, 0b100, 0b110, 0b101] {
//!     let coeffs = BitVec::from_lsb_bits(mask as u64, 3);
//!     let packet = encode_subset(&coeffs, &group);
//!     decoder.insert(packet.coefficients, packet.payload);
//! }
//!
//! assert!(decoder.is_complete());
//! assert_eq!(decoder.decode().unwrap(), group);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod coded;
pub mod decoder;
pub mod matrix;

pub use bitvec::BitVec;
pub use coded::CodedPacket;
pub use decoder::Decoder;
pub use matrix::BitMatrix;
