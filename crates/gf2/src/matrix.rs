//! Dense GF(2) matrices: rank, row reduction, random sampling.
//!
//! This is the machinery behind Lemma 3 of the paper ("a random `l × w`
//! binary matrix has full column rank with probability ≥ 1 - ε once
//! `l ≥ 2(w+2) + 8·ln(1/ε)`"), which experiment E6 reproduces by Monte
//! Carlo over [`BitMatrix::random`].

use rand::Rng;

use crate::bitvec::BitVec;

/// A dense matrix over GF(2), stored as one [`BitVec`] per row.
///
/// ```
/// use gf2::matrix::BitMatrix;
/// use gf2::bitvec::BitVec;
///
/// let m = BitMatrix::from_rows(vec![
///     BitVec::from_lsb_bits(0b01, 2),
///     BitVec::from_lsb_bits(0b10, 2),
///     BitVec::from_lsb_bits(0b11, 2), // dependent on the first two
/// ]);
/// assert_eq!(m.rank(), 2);
/// assert!(m.has_full_column_rank());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<BitVec>,
    cols: usize,
}

impl BitMatrix {
    /// An `l × w` zero matrix.
    #[must_use]
    pub fn zeros(l: usize, w: usize) -> Self {
        BitMatrix {
            rows: (0..l).map(|_| BitVec::zeros(w)).collect(),
            cols: w,
        }
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    #[must_use]
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        BitMatrix { rows, cols }
    }

    /// An `l × w` matrix with i.i.d. uniform entries — the distribution of
    /// the paper's coding coefficients (each entry 0 or 1 w.p. ½).
    #[must_use]
    pub fn random(l: usize, w: usize, rng: &mut impl Rng) -> Self {
        BitMatrix {
            rows: (0..l).map(|_| BitVec::random(w, rng)).collect(),
            cols: w,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    #[must_use]
    pub fn col_count(&self) -> usize {
        self.cols
    }

    /// Row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// The rank over GF(2), via Gaussian elimination on a scratch copy.
    #[must_use]
    pub fn rank(&self) -> usize {
        let mut rows = self.rows.clone();
        let mut rank = 0;
        for col in 0..self.cols {
            // Find a pivot row with a 1 in `col` at or below `rank`.
            let Some(pivot) = (rank..rows.len()).find(|&r| rows[r].get(col)) else {
                continue;
            };
            rows.swap(rank, pivot);
            let pivot_row = rows[rank].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank && row.get(col) {
                    row.xor_assign(&pivot_row);
                }
            }
            rank += 1;
            if rank == rows.len() {
                break;
            }
        }
        rank
    }

    /// `true` if the columns are linearly independent (`rank == w`), i.e.
    /// a receiver holding these coefficient rows can decode all `w`
    /// packets of a group.
    #[must_use]
    pub fn has_full_column_rank(&self) -> bool {
        self.rank() == self.cols
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.cols, self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            for j in row.iter_ones() {
                t.rows[j].set(i, true);
            }
        }
        t
    }

    /// The `w × w` identity matrix.
    #[must_use]
    pub fn identity(w: usize) -> BitMatrix {
        BitMatrix::from_rows((0..w).map(|i| BitVec::unit(w, i)).collect())
    }

    /// Matrix product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows.len(), "inner dimensions must agree");
        let mut out = BitMatrix::zeros(self.rows.len(), other.cols);
        for (i, row) in self.rows.iter().enumerate() {
            for j in row.iter_ones() {
                out.rows[i].xor_assign(&other.rows[j]);
            }
        }
        out
    }

    /// Matrix–vector product `A·x` over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn mul_vec(&self, x: &BitVec) -> BitVec {
        assert_eq!(x.len(), self.cols, "vector length must equal columns");
        self.rows
            .iter()
            .map(|row| {
                // Dot product over GF(2) = parity of the AND; walk x's
                // support.
                let mut acc = false;
                for j in x.iter_ones() {
                    acc ^= row.get(j);
                }
                acc
            })
            .collect()
    }

    /// Inverse of a square matrix, if it is invertible
    /// (Gauss–Jordan on `[A | I]`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn invert(&self) -> Option<BitMatrix> {
        let w = self.cols;
        assert_eq!(self.rows.len(), w, "inverse requires a square matrix");
        let mut a = self.rows.clone();
        let mut inv = BitMatrix::identity(w).rows;
        for col in 0..w {
            let pivot = (col..w).find(|&r| a[r].get(col))?;
            a.swap(col, pivot);
            inv.swap(col, pivot);
            let (arow, irow) = (a[col].clone(), inv[col].clone());
            for r in 0..w {
                if r != col && a[r].get(col) {
                    a[r].xor_assign(&arow);
                    inv[r].xor_assign(&irow);
                }
            }
        }
        Some(BitMatrix::from_rows(inv))
    }

    /// Solves `A·x = b` for square invertible `A`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    #[must_use]
    pub fn solve(&self, b: &BitVec) -> Option<BitVec> {
        assert_eq!(b.len(), self.rows.len(), "rhs length must equal rows");
        Some(self.invert()?.mul_vec(b))
    }

    /// Fraction of 1 entries (0 for an empty matrix).
    #[must_use]
    pub fn density(&self) -> f64 {
        let cells = self.rows.len() * self.cols;
        if cells == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.rows.iter().map(BitVec::count_ones).sum::<usize>() as f64 / cells as f64
        }
    }
}

/// The paper's Lemma 3 row-count threshold: with
/// `l ≥ 2(w+2) + 8·ln(1/ε)` uniform rows, the matrix has full column rank
/// with probability at least `1 - ε`.
///
/// ```
/// let l = gf2::matrix::lemma3_row_threshold(10, 0.01);
/// assert!(l >= 24);
/// ```
///
/// # Panics
///
/// Panics if `epsilon` is not in `(0, 1]`.
#[must_use]
pub fn lemma3_row_threshold(w: usize, epsilon: f64) -> usize {
    assert!(
        epsilon > 0.0 && epsilon <= 1.0,
        "epsilon must be in (0, 1], got {epsilon}"
    );
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_sign_loss,
        clippy::cast_possible_truncation
    )]
    let extra = (8.0 * (1.0 / epsilon).ln()).ceil() as usize;
    2 * (w + 2) + extra
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn identity_has_full_rank() {
        let m = BitMatrix::from_rows((0..8).map(|i| BitVec::unit(8, i)).collect());
        assert_eq!(m.rank(), 8);
        assert!(m.has_full_column_rank());
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        assert_eq!(BitMatrix::zeros(4, 6).rank(), 0);
    }

    #[test]
    fn dependent_rows_reduce_rank() {
        let a = BitVec::from_lsb_bits(0b101, 3);
        let b = BitVec::from_lsb_bits(0b011, 3);
        let mut c = a.clone();
        c.xor_assign(&b); // c = a + b
        let m = BitMatrix::from_rows(vec![a, b, c]);
        assert_eq!(m.rank(), 2);
        assert!(!m.has_full_column_rank());
    }

    #[test]
    fn rank_bounded_by_dimensions() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m = BitMatrix::random(5, 9, &mut rng);
        assert!(m.rank() <= 5);
        let m = BitMatrix::random(9, 5, &mut rng);
        assert!(m.rank() <= 5);
    }

    #[test]
    fn empty_matrix_edge_cases() {
        assert_eq!(BitMatrix::zeros(0, 0).rank(), 0);
        assert!(BitMatrix::zeros(0, 0).has_full_column_rank());
        assert_eq!(BitMatrix::zeros(3, 0).rank(), 0);
        assert!(BitMatrix::zeros(3, 0).has_full_column_rank());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_rejects_ragged() {
        let _ = BitMatrix::from_rows(vec![BitVec::zeros(2), BitVec::zeros(3)]);
    }

    #[test]
    fn lemma3_threshold_formula() {
        // w = 10, eps = 0.01: 2*12 + ceil(8*ln 100) = 24 + 37 = 61.
        assert_eq!(lemma3_row_threshold(10, 0.01), 61);
        assert_eq!(lemma3_row_threshold(0, 1.0), 4);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn lemma3_threshold_rejects_zero_epsilon() {
        let _ = lemma3_row_threshold(4, 0.0);
    }

    #[test]
    fn lemma3_holds_empirically_small() {
        // Sanity version of experiment E6: at the Lemma 3 threshold for
        // eps = 0.1, at least 90% of sampled matrices are full rank.
        let w = 8;
        let l = lemma3_row_threshold(w, 0.1);
        let mut rng = SmallRng::seed_from_u64(11);
        let trials = 200;
        let full = (0..trials)
            .filter(|_| BitMatrix::random(l, w, &mut rng).has_full_column_rank())
            .count();
        assert!(full >= trials * 9 / 10, "only {full}/{trials} full rank");
    }

    #[test]
    fn transpose_involutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let m = BitMatrix::random(6, 9, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().row_count(), 9);
        assert_eq!(m.transpose().col_count(), 6);
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let mut rng = SmallRng::seed_from_u64(6);
        let m = BitMatrix::random(5, 5, &mut rng);
        let i = BitMatrix::identity(5);
        assert_eq!(m.mul(&i), m);
        assert_eq!(i.mul(&m), m);
    }

    #[test]
    fn invert_roundtrips() {
        let mut rng = SmallRng::seed_from_u64(7);
        // Find an invertible 8x8 (a random one is with prob ~0.29).
        let m = loop {
            let m = BitMatrix::random(8, 8, &mut rng);
            if m.has_full_column_rank() {
                break m;
            }
        };
        let inv = m.invert().expect("full rank is invertible");
        assert_eq!(m.mul(&inv), BitMatrix::identity(8));
        assert_eq!(inv.mul(&m), BitMatrix::identity(8));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = BitMatrix::zeros(4, 4);
        assert_eq!(m.invert(), None);
        assert_eq!(m.solve(&BitVec::zeros(4)), None);
    }

    #[test]
    fn solve_recovers_x() {
        let mut rng = SmallRng::seed_from_u64(8);
        let m = loop {
            let m = BitMatrix::random(6, 6, &mut rng);
            if m.has_full_column_rank() {
                break m;
            }
        };
        let x = BitVec::random(6, &mut rng);
        let b = m.mul_vec(&x);
        assert_eq!(m.solve(&b), Some(x));
    }

    #[test]
    fn density_of_random_near_half() {
        let mut rng = SmallRng::seed_from_u64(9);
        let m = BitMatrix::random(64, 64, &mut rng);
        let d = m.density();
        assert!((0.4..0.6).contains(&d), "density {d}");
        assert_eq!(BitMatrix::zeros(3, 3).density(), 0.0);
        assert_eq!(BitMatrix::zeros(0, 0).density(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_mul_associative(seed in any::<u64>(), a in 1usize..6, b in 1usize..6, c in 1usize..6, d in 1usize..6) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m1 = BitMatrix::random(a, b, &mut rng);
            let m2 = BitMatrix::random(b, c, &mut rng);
            let m3 = BitMatrix::random(c, d, &mut rng);
            prop_assert_eq!(m1.mul(&m2).mul(&m3), m1.mul(&m2.mul(&m3)));
        }

        #[test]
        fn prop_transpose_of_product(seed in any::<u64>(), a in 1usize..6, b in 1usize..6, c in 1usize..6) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m1 = BitMatrix::random(a, b, &mut rng);
            let m2 = BitMatrix::random(b, c, &mut rng);
            // (AB)^T = B^T A^T
            prop_assert_eq!(m1.mul(&m2).transpose(), m2.transpose().mul(&m1.transpose()));
        }

        #[test]
        fn prop_rank_invariant_under_transpose(seed in any::<u64>(), l in 1usize..10, w in 1usize..10) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = BitMatrix::random(l, w, &mut rng);
            prop_assert_eq!(m.rank(), m.transpose().rank());
        }

        #[test]
        fn prop_rank_invariant_under_row_shuffle(seed in any::<u64>(), l in 1usize..12, w in 1usize..12) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = BitMatrix::random(l, w, &mut rng);
            let mut rows = m.rows.clone();
            rows.reverse();
            let shuffled = BitMatrix::from_rows(rows);
            prop_assert_eq!(m.rank(), shuffled.rank());
        }

        #[test]
        fn prop_adding_dependent_row_keeps_rank(seed in any::<u64>(), l in 2usize..10, w in 1usize..10) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = BitMatrix::random(l, w, &mut rng);
            let mut extra = m.row(0).clone();
            extra.xor_assign(m.row(1));
            let mut rows = m.rows.clone();
            rows.push(extra);
            prop_assert_eq!(BitMatrix::from_rows(rows).rank(), m.rank());
        }

        #[test]
        fn prop_rank_monotone_in_rows(seed in any::<u64>(), l in 1usize..12, w in 1usize..12) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = BitMatrix::random(l, w, &mut rng);
            let prefix = BitMatrix::from_rows(m.rows[..l / 2].to_vec());
            prop_assert!(prefix.rank() <= m.rank());
        }
    }
}
