//! Property-based tests of the Decay schedule and timing arithmetic.

use proptest::prelude::*;
use protocols::decay::Decay;
use protocols::timing;

proptest! {
    /// The probability ladder starts at 1/2, halves every round within
    /// an epoch, and resets at epoch boundaries.
    #[test]
    fn ladder_shape(delta in 1usize..10_000, round in 0u64..1_000) {
        let d = Decay::new(delta);
        let len = d.epoch_len() as u64;
        prop_assert!(len >= 1);
        let p = d.probability(round);
        let pos = round % len;
        let expected = 0.5f64.powi(i32::try_from(pos).unwrap() + 1);
        prop_assert!((p - expected).abs() < 1e-12);
        // Epoch boundary resets to 1/2.
        prop_assert!((d.probability(round - pos) - 0.5).abs() < 1e-12);
    }

    /// Epoch length is exactly ⌈log2 Δ⌉ (min 1) and is monotone in Δ.
    #[test]
    fn epoch_len_matches_ceil_log2(delta in 1usize..1_000_000) {
        let d = Decay::new(delta);
        prop_assert_eq!(d.epoch_len(), timing::ceil_log2(delta).max(1));
        prop_assert!(Decay::new(delta + 1).epoch_len() >= d.epoch_len());
    }

    /// ceil_log2 is the inverse of exponentiation on powers of two and
    /// is monotone everywhere.
    #[test]
    fn ceil_log2_properties(x in 1usize..(1 << 30)) {
        let l = timing::ceil_log2(x);
        prop_assert!(1usize.checked_shl(u32::try_from(l).unwrap()).is_none_or(|v| v >= x));
        if l > 0 {
            prop_assert!(1usize << (l - 1) < x);
        }
        prop_assert!(timing::ceil_log2(x + 1) >= l);
    }

    /// The epidemic window grows monotonically in every parameter.
    #[test]
    fn window_monotone(n in 2usize..10_000, d in 1usize..100, delta in 1usize..1_000, c in 1usize..6) {
        let w = timing::epidemic_window_rounds(n, d, delta, c);
        prop_assert!(w > 0);
        prop_assert!(timing::epidemic_window_rounds(n * 2, d, delta, c) >= w);
        prop_assert!(timing::epidemic_window_rounds(n, d + 1, delta, c) >= w);
        prop_assert!(timing::epidemic_window_rounds(n, d, delta * 2, c) >= w);
        prop_assert!(timing::epidemic_window_rounds(n, d, delta, c + 1) > w);
    }
}
