//! Emulation of a single-hop channel **with collision detection** on a
//! multi-hop radio network **without** it (Bar-Yehuda, Goldreich & Itai,
//! *Distributed Computing* 1991) — the primitive behind the paper's
//! Fact 1 ("a deterministic binary-search algorithm based on collision
//! detection can be used to select a node with maximum ID").
//!
//! One emulated round must let every node distinguish three outcomes:
//! *silence* (no transmitter anywhere), *single* (exactly one, and its
//! value is received), or *collision* (two or more). The construction
//! uses two epidemic-broadcast windows per emulated round:
//!
//! 1. **Value window** — every emulated transmitter floods its value;
//!    relays forward the *maximum* value they have heard (max-flooding
//!    is still a 1-bit-per-bit OR, so the BGI analysis applies). At the
//!    window's end every node knows `max(values)` or silence.
//! 2. **Dissent window** — every emulated transmitter whose own value
//!    differs from the received maximum floods a 1-bit dissent. Dissent
//!    ⇒ at least two transmitters ⇒ *collision*; silence after a value
//!    ⇒ *single*.
//!
//! Two transmitters with the *same* value are indistinguishable from one
//! — callers must transmit distinguishable values (e.g. their ids),
//! which is exactly how the max-id search uses it.
//!
//! The composite state machine [`CdEmulation`] runs a *sequence* of
//! emulated rounds; the caller decides per emulated round whether this
//! node transmits (and with which value) via a callback on
//! [`CdEmulation::begin_round`].

use rand::Rng;

use crate::epidemic::Epidemic;
use radio_net::message::MessageSize;

/// Outcome of one emulated collision-detection round, as observed by a
/// node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CdOutcome {
    /// No node transmitted.
    Silence,
    /// Exactly one node transmitted this value (w.h.p.).
    Single(u64),
    /// At least two nodes transmitted (w.h.p.).
    Collision(u64),
}

/// Message of the emulation: which emulated round, which window, and
/// the flooded content.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CdMsg {
    /// Emulated-round index.
    pub round: u32,
    /// Window 0 (value flood) or 1 (dissent flood).
    pub window: u8,
    /// Flooded value (the running maximum in window 0; unused in 1).
    pub value: u64,
}

impl MessageSize for CdMsg {
    fn size_bits(&self) -> usize {
        32 + 8 + 64
    }
}

/// Shared parameters: both windows have the same length, sized like any
/// epidemic window (`c·(D + log n)` Decay epochs) — but use roughly
/// **twice** the ordinary epidemic constant: in the value window a
/// larger value must *overtake* regions already saturated by smaller
/// ones, where every node is transmitting, which halves the frontier's
/// per-round progress probability compared to a fresh flood.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CdConfig {
    /// Rounds per flood window.
    pub window_rounds: u64,
    /// Maximum-degree bound Δ.
    pub delta_bound: usize,
}

impl CdConfig {
    /// Real rounds consumed by one emulated round (two windows).
    #[must_use]
    pub fn emulated_round_cost(&self) -> u64 {
        2 * self.window_rounds
    }
}

/// Per-node state machine emulating a sequence of collision-detection
/// rounds.
#[derive(Clone, Debug)]
pub struct CdEmulation {
    cfg: CdConfig,
    /// Emulated round currently executing.
    round: u32,
    /// This node's transmission for the current emulated round.
    own: Option<u64>,
    /// Maximum value heard in the current value window (incl. own).
    max_heard: Option<u64>,
    /// Whether dissent was heard (or raised) this emulated round.
    dissent: bool,
    value_relay: Epidemic,
    dissent_relay: Epidemic,
}

impl CdEmulation {
    /// Creates the emulation.
    #[must_use]
    pub fn new(cfg: CdConfig) -> Self {
        CdEmulation {
            cfg,
            round: 0,
            own: None,
            max_heard: None,
            dissent: false,
            value_relay: Epidemic::new(cfg.delta_bound, false),
            dissent_relay: Epidemic::new(cfg.delta_bound, false),
        }
    }

    /// Starts emulated round `round`; `transmit` is `Some(value)` if
    /// this node transmits on the emulated channel. Must be called (with
    /// ascending round indices) before polling within that round.
    pub fn begin_round(&mut self, round: u32, transmit: Option<u64>) {
        self.round = round;
        self.own = transmit;
        self.max_heard = transmit;
        self.dissent = false;
        self.value_relay.reset(transmit.is_some());
        self.dissent_relay.reset(false);
    }

    /// Transmit decision at `local` (rounds within the current emulated
    /// round, `0 .. emulated_round_cost`).
    pub fn poll(&mut self, local: u64, rng: &mut impl Rng) -> Option<CdMsg> {
        if local < self.cfg.window_rounds {
            // Value window: informed nodes flood the running maximum.
            self.value_relay.poll(local, rng).then(|| CdMsg {
                round: self.round,
                window: 0,
                value: self.max_heard.expect("informed implies a value"),
            })
        } else {
            // Dissent window: a transmitter whose value lost the
            // max-flood has detected a collision and floods dissent.
            // (`check_dissent` also runs on every delivery, so a value
            // learned late still raises it.)
            let wl = local - self.cfg.window_rounds;
            self.check_dissent();
            self.dissent_relay.poll(wl, rng).then_some(CdMsg {
                round: self.round,
                window: 1,
                value: 0,
            })
        }
    }

    /// Handles a received emulation message.
    pub fn deliver(&mut self, msg: &CdMsg) {
        if msg.round != self.round {
            return; // stale window boundary
        }
        match msg.window {
            0 => {
                if self.max_heard.is_none_or(|m| msg.value > m) {
                    self.max_heard = Some(msg.value);
                }
                self.value_relay.inform();
                self.check_dissent();
            }
            _ => {
                self.dissent = true;
                self.dissent_relay.inform();
            }
        }
    }

    /// An emulated transmitter that has heard a value other than its own
    /// has witnessed a collision.
    fn check_dissent(&mut self) {
        if let (Some(own), Some(max)) = (self.own, self.max_heard) {
            if own != max && !self.dissent {
                self.dissent = true;
                self.dissent_relay.inform();
            }
        }
    }

    /// The emulated round's outcome; read after `emulated_round_cost`
    /// rounds have elapsed.
    #[must_use]
    pub fn outcome(&self) -> CdOutcome {
        match (self.max_heard, self.dissent) {
            (None, _) => CdOutcome::Silence,
            (Some(v), false) => CdOutcome::Single(v),
            (Some(v), true) => CdOutcome::Collision(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing;
    use radio_net::engine::{Engine, Node};
    use radio_net::graph::NodeId;
    use radio_net::rng;
    use radio_net::topology::Topology;
    use rand::rngs::SmallRng;

    struct CdNode {
        em: CdEmulation,
        plan: Vec<Option<u64>>, // per emulated round
        rng: SmallRng,
        cost: u64,
        outcomes: Vec<CdOutcome>,
    }

    impl Node for CdNode {
        type Msg = CdMsg;
        fn poll(&mut self, round: u64) -> Option<CdMsg> {
            let er = (round / self.cost) as usize;
            let local = round % self.cost;
            if local == 0 {
                if er > 0 {
                    self.outcomes.push(self.em.outcome());
                }
                let tx = self.plan.get(er).copied().flatten();
                self.em.begin_round(u32::try_from(er).unwrap(), tx);
            }
            self.em.poll(local, &mut self.rng)
        }
        fn receive(&mut self, _round: u64, msg: &CdMsg) {
            self.em.deliver(msg);
        }
    }

    /// Runs `plans[node][emulated_round]` and returns every node's
    /// outcome sequence.
    fn emulate(
        topology: &Topology,
        plans: Vec<Vec<Option<u64>>>,
        seed: u64,
    ) -> Vec<Vec<CdOutcome>> {
        let g = topology.build(seed).unwrap();
        let n = g.len();
        let delta = g.max_degree();
        let d = g.diameter().unwrap();
        let cfg = CdConfig {
            window_rounds: timing::epidemic_window_rounds(n, d, delta, 6),
            delta_bound: delta,
        };
        let rounds = plans[0].len();
        let nodes: Vec<CdNode> = (0..n)
            .map(|i| CdNode {
                em: CdEmulation::new(cfg),
                plan: plans[i].clone(),
                rng: rng::stream(seed, i as u64),
                cost: cfg.emulated_round_cost(),
                outcomes: Vec::new(),
            })
            .collect();
        let mut e = Engine::new(g, nodes, (0..n).map(NodeId::new)).unwrap();
        e.run(cfg.emulated_round_cost() * rounds as u64);
        e.into_nodes()
            .into_iter()
            .map(|mut nd| {
                nd.outcomes.push(nd.em.outcome());
                nd.outcomes
            })
            .collect()
    }

    #[test]
    fn silence_single_collision_on_path() {
        for seed in 0..3 {
            let n = 12;
            // Round 0: silence. Round 1: node 3 alone (value 33).
            // Round 2: nodes 2 and 9 (values 22, 99) -> collision.
            let plans: Vec<Vec<Option<u64>>> = (0..n)
                .map(|i| {
                    vec![
                        None,
                        (i == 3).then_some(33),
                        match i {
                            2 => Some(22),
                            9 => Some(99),
                            _ => None,
                        },
                    ]
                })
                .collect();
            let outcomes = emulate(&Topology::Path { n }, plans, seed);
            for (i, o) in outcomes.iter().enumerate() {
                assert_eq!(o[0], CdOutcome::Silence, "seed {seed} node {i}");
                assert_eq!(o[1], CdOutcome::Single(33), "seed {seed} node {i}");
                assert_eq!(o[2], CdOutcome::Collision(99), "seed {seed} node {i}");
            }
        }
    }

    #[test]
    fn collision_detected_on_random_graph() {
        for seed in 0..3 {
            let n = 24;
            let plans: Vec<Vec<Option<u64>>> = (0..n)
                .map(|i| vec![[5usize, 11, 17].contains(&i).then_some(i as u64)])
                .collect();
            let outcomes = emulate(&Topology::Gnp { n, p: 0.2 }, plans, seed);
            for o in &outcomes {
                assert_eq!(o[0], CdOutcome::Collision(17));
            }
        }
    }

    #[test]
    fn equal_values_look_single_as_documented() {
        // Two transmitters with the same value are indistinguishable
        // from one — the documented caveat.
        let n = 8;
        let plans: Vec<Vec<Option<u64>>> = (0..n)
            .map(|i| vec![(i == 1 || i == 6).then_some(7)])
            .collect();
        let outcomes = emulate(&Topology::Path { n }, plans, 1);
        for o in &outcomes {
            assert_eq!(o[0], CdOutcome::Single(7));
        }
    }

    /// Max-id search over the emulated channel: binary descent where in
    /// each emulated round the still-alive candidates with the probed
    /// bit set transmit their ids. Single(id) ends the search early;
    /// Collision(max) narrows it — the classic Fact 1 algorithm, here
    /// as an integration test of the emulation.
    #[test]
    fn max_id_search_over_emulated_channel() {
        let n = 16;
        let candidates: Vec<usize> = vec![2, 5, 11, 14];
        let seed = 3;
        // Drive the emulation round by round from the harness: each
        // emulated round, transmitters = alive candidates with bit set.
        let id_bits = 4;
        let mut alive: Vec<u64> = candidates.iter().map(|&c| c as u64).collect();
        let mut prefix = 0u64;
        let mut plans_per_round: Vec<Vec<Option<u64>>> = Vec::new();
        // Precompute the transmission plan by simulating the search
        // logic on ground truth (the emulation must reproduce it).
        for bit in (0..id_bits).rev() {
            let probe = prefix | (1 << bit);
            let shift = bit;
            let senders: Vec<u64> = alive
                .iter()
                .copied()
                .filter(|&id| (id >> shift) == (probe >> shift))
                .collect();
            plans_per_round.push(
                (0..n)
                    .map(|i| senders.contains(&(i as u64)).then_some(i as u64))
                    .collect(),
            );
            if !senders.is_empty() {
                prefix = probe;
                alive.retain(|&id| (id >> shift) == (probe >> shift));
            }
        }
        // Transpose to per-node plans.
        let plans: Vec<Vec<Option<u64>>> = (0..n)
            .map(|i| plans_per_round.iter().map(|r| r[i]).collect())
            .collect();
        let outcomes = emulate(&Topology::Grid2d { rows: 4, cols: 4 }, plans, seed);
        // Every node, replaying the outcomes, must find max id = 14.
        for o in &outcomes {
            let mut found = 0u64;
            for (i, out) in o.iter().enumerate() {
                let bit = id_bits - 1 - i;
                match out {
                    CdOutcome::Single(_) | CdOutcome::Collision(_) => found |= 1 << bit,
                    CdOutcome::Silence => {}
                }
            }
            assert_eq!(found, 14);
        }
    }
}

/// The literal Fact 1 algorithm: deterministic binary search for the
/// maximum id over the emulated collision-detection channel.
///
/// In emulated round `i` (one per id bit, MSB-first), the still-alive
/// candidates whose id extends the decided prefix with a 1-bit transmit
/// their ids. Any non-silence (single *or* collision — the emulated
/// channel's max value is enough) fixes the bit to 1 and eliminates the
/// 0-branch candidates; silence fixes it to 0. After `id_bits` emulated
/// rounds every node knows the maximum candidate id.
///
/// This is the verification twin of [`crate::leader::LeaderElection`]
/// (which answers each probe with a plain OR flood): same outcome, same
/// asymptotics, but routed through the emulation primitive the paper
/// cites.
#[derive(Clone, Debug)]
pub struct MaxIdSearch {
    cfg: CdConfig,
    id_bits: u32,
    my_id: u64,
    candidate: bool,
    em: CdEmulation,
    prefix: u64,
    round: u32,
    started: bool,
}

impl MaxIdSearch {
    /// Creates the search; `candidate` nodes compete with `my_id`.
    ///
    /// # Panics
    ///
    /// Panics if `my_id` needs more than `id_bits` bits.
    #[must_use]
    pub fn new(cfg: CdConfig, id_bits: u32, my_id: u64, candidate: bool) -> Self {
        assert!(
            id_bits >= 64 || my_id < (1u64 << id_bits),
            "id {my_id} does not fit in {id_bits} bits"
        );
        MaxIdSearch {
            cfg,
            id_bits,
            my_id,
            candidate,
            em: CdEmulation::new(cfg),
            prefix: 0,
            round: 0,
            started: false,
        }
    }

    /// Total real rounds of the search.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        u64::from(self.id_bits) * self.cfg.emulated_round_cost()
    }

    fn close_round(&mut self) {
        let bit = self.id_bits - 1 - self.round;
        if !matches!(self.em.outcome(), CdOutcome::Silence) {
            self.prefix |= 1 << bit;
        }
        self.round += 1;
    }

    fn open_round(&mut self) {
        let bit = self.id_bits - 1 - self.round;
        let probe = self.prefix | (1 << bit);
        // Transmit iff alive (id matches the probe's fixed high bits).
        let transmit =
            (self.candidate && (self.my_id >> bit) == (probe >> bit)).then_some(self.my_id);
        self.em.begin_round(self.round, transmit);
    }

    /// Transmit decision at `local` (rounds since the search began).
    pub fn poll(&mut self, local: u64, rng: &mut impl Rng) -> Option<CdMsg> {
        let cost = self.cfg.emulated_round_cost();
        let target = u32::try_from(local / cost).expect("round fits u32");
        if target >= self.id_bits {
            return None;
        }
        if !self.started {
            self.started = true;
            self.open_round();
        }
        while self.round < target {
            self.close_round();
            if self.round < self.id_bits {
                self.open_round();
            }
        }
        self.em.poll(local % cost, rng)
    }

    /// Handles a received emulation message.
    pub fn deliver(&mut self, msg: &CdMsg) {
        self.em.deliver(msg);
    }

    /// The maximum candidate id, after `total_rounds` have elapsed
    /// (closes the final emulated round; idempotent).
    pub fn finish(&mut self) -> u64 {
        while self.round < self.id_bits {
            self.close_round();
            if self.round < self.id_bits {
                self.open_round();
            }
        }
        self.prefix
    }

    /// Whether this node won (call after [`MaxIdSearch::finish`]).
    #[must_use]
    pub fn is_max(&self) -> bool {
        self.candidate && self.prefix == self.my_id
    }
}

#[cfg(test)]
mod search_tests {
    use super::*;
    use crate::timing;
    use radio_net::engine::{Engine, Node};
    use radio_net::graph::NodeId;
    use radio_net::rng;
    use radio_net::topology::Topology;
    use rand::rngs::SmallRng;

    struct SearchNode {
        s: MaxIdSearch,
        rng: SmallRng,
    }

    impl Node for SearchNode {
        type Msg = CdMsg;
        fn poll(&mut self, round: u64) -> Option<CdMsg> {
            self.s.poll(round, &mut self.rng)
        }
        fn receive(&mut self, _round: u64, msg: &CdMsg) {
            self.s.deliver(msg);
        }
    }

    fn run_search(topology: &Topology, candidates: &[usize], seed: u64) -> Vec<(u64, bool)> {
        let g = topology.build(seed).unwrap();
        let n = g.len();
        let cfg = CdConfig {
            window_rounds: timing::epidemic_window_rounds(
                n,
                g.diameter().unwrap(),
                g.max_degree(),
                6,
            ),
            delta_bound: g.max_degree(),
        };
        let id_bits = u32::try_from(timing::ceil_log2(n).max(1)).unwrap();
        let nodes: Vec<SearchNode> = (0..n)
            .map(|i| SearchNode {
                s: MaxIdSearch::new(cfg, id_bits, i as u64, candidates.contains(&i)),
                rng: rng::stream(seed, i as u64),
            })
            .collect();
        let total = u64::from(id_bits) * cfg.emulated_round_cost();
        let mut e = Engine::new(g, nodes, (0..n).map(NodeId::new)).unwrap();
        e.run(total);
        e.into_nodes()
            .into_iter()
            .map(|mut nd| {
                let max = nd.s.finish();
                (max, nd.s.is_max())
            })
            .collect()
    }

    #[test]
    fn finds_max_on_grid() {
        for seed in 0..3 {
            let out = run_search(&Topology::Grid2d { rows: 4, cols: 4 }, &[2, 7, 11], seed);
            for (i, (max, won)) in out.iter().enumerate() {
                assert_eq!(*max, 11, "seed {seed} node {i}");
                assert_eq!(*won, i == 11);
            }
        }
    }

    #[test]
    fn finds_max_on_random_graph() {
        for seed in 0..3 {
            let out = run_search(&Topology::Gnp { n: 20, p: 0.25 }, &[0, 5, 13, 19], seed);
            for (max, _) in &out {
                assert_eq!(*max, 19, "seed {seed}");
            }
        }
    }

    #[test]
    fn lone_candidate_wins() {
        let out = run_search(&Topology::Path { n: 8 }, &[3], 1);
        for (max, won) in out.iter().enumerate().map(|(i, o)| (o.0, (i == 3) == o.1)) {
            assert_eq!(max, 3);
            assert!(won);
        }
    }

    #[test]
    fn agrees_with_or_flood_election() {
        // The two Stage 1 implementations must elect the same node.
        use crate::leader::{LeaderConfig, LeaderElection};
        let topo = Topology::Gnp { n: 24, p: 0.2 };
        let candidates = [1usize, 8, 17, 22];
        let seed = 5;
        let emu = run_search(&topo, &candidates, seed);
        let expected = emu[0].0;

        let g = topo.build(seed).unwrap();
        let lcfg = LeaderConfig {
            id_bits: 5,
            window_rounds: timing::epidemic_window_rounds(
                24,
                g.diameter().unwrap(),
                g.max_degree(),
                3,
            ),
            delta_bound: g.max_degree(),
        };
        struct LN {
            le: LeaderElection,
            rng: SmallRng,
        }
        impl Node for LN {
            type Msg = crate::leader::ProbeMsg;
            fn poll(&mut self, round: u64) -> Option<Self::Msg> {
                self.le.poll(round, &mut self.rng)
            }
            fn receive(&mut self, round: u64, msg: &Self::Msg) {
                self.le.deliver(round, msg);
            }
        }
        let nodes: Vec<LN> = (0..24)
            .map(|i| LN {
                le: LeaderElection::new(lcfg, i as u64, candidates.contains(&i)),
                rng: rng::stream(seed, 100 + i as u64),
            })
            .collect();
        let mut e = Engine::new(g, nodes, (0..24).map(NodeId::new)).unwrap();
        e.run(lcfg.total_rounds());
        for mut nd in e.into_nodes() {
            nd.le.finalize();
            if let Some(o) = nd.le.outcome() {
                assert_eq!(o.leader_id, expected);
            }
        }
    }
}
