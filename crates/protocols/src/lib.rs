//! # protocols
//!
//! Classic building-block protocols for multi-hop radio networks without
//! collision detection, implemented as engine-independent state machines:
//!
//! * [`decay`] — the **Decay** primitive of Bar-Yehuda, Goldreich & Itai
//!   (1992): exponentially decreasing transmission probabilities that let
//!   a listener with anywhere between 1 and Δ transmitting neighbors
//!   receive within one `⌈log Δ⌉`-round epoch with constant probability.
//! * [`epidemic`] — BGI randomized broadcast: every informed node runs
//!   Decay epochs; a message crosses the network in
//!   `O((D + log n)·log Δ)` rounds w.h.p. Doubles as the paper's `ALARM`
//!   sub-routine (1-bit alarms) and the network-wide OR used below.
//! * [`emulation`] — the BGI 1991 emulation of a single-hop channel
//!   *with collision detection* on a multi-hop network without it (two
//!   epidemic windows per emulated round): the primitive Fact 1 cites.
//! * [`leader`] — Stage 1 of the paper: elect the highest-id
//!   packet-holding node by binary search over the id space, each probe
//!   answered by a network-wide OR flood
//!   (`O((D + log n)·log n·log Δ)` rounds, Fact 1).
//! * [`bfs`] — Stage 2: the distributed BFS-tree construction of BGI,
//!   `D` phases of `O(log n·log Δ)` rounds; after phase `d` every node at
//!   distance `d` knows its parent and distance w.h.p. (Theorem 1).
//! * [`timing`] — the shared round-arithmetic helpers (`ceil_log2`, epoch
//!   and window lengths) so every crate derives identical schedules.
//!
//! Each state machine exposes `poll(local_round, rng) -> Option<Msg>` and
//! `deliver(local_round, &msg)`; a composite protocol (see the `kbcast`
//! crate) multiplexes them onto the channel, and each module also ships a
//! standalone adapter implementing [`radio_net::Node`] for direct
//! simulation in tests and micro-benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod decay;
pub mod emulation;
pub mod epidemic;
pub mod leader;
pub mod timing;

pub use decay::Decay;
pub use emulation::{CdEmulation, MaxIdSearch};
pub use epidemic::Epidemic;
pub use leader::LeaderElection;
pub use timing::ceil_log2;
