//! Round-arithmetic helpers shared by every protocol.
//!
//! All schedule lengths in this workspace are *deterministic functions of
//! the shared network estimates* (`n_bound`, `d_bound`, `delta_bound`) and
//! explicit constants, because nodes must agree on phase boundaries
//! without communicating. Deriving them through one module guarantees
//! that agreement.

/// `⌈log2(x)⌉` for `x ≥ 1`; `0` for `x ∈ {0, 1}`.
///
/// ```
/// use protocols::timing::ceil_log2;
/// assert_eq!(ceil_log2(1), 0);
/// assert_eq!(ceil_log2(2), 1);
/// assert_eq!(ceil_log2(5), 3);
/// assert_eq!(ceil_log2(8), 3);
/// ```
#[must_use]
pub fn ceil_log2(x: usize) -> usize {
    if x <= 1 {
        0
    } else {
        (usize::BITS - (x - 1).leading_zeros()) as usize
    }
}

/// Length of one Decay epoch for a maximum-degree bound Δ: `⌈log2 Δ⌉`
/// rounds, but at least 1 (the paper's probability ladder
/// `1/2, 1/4, …, 1/2^⌈log Δ⌉` needs at least one rung).
#[must_use]
pub fn epoch_len(delta_bound: usize) -> usize {
    ceil_log2(delta_bound).max(1)
}

/// `log2`-style size of the id space / packet-count estimates: the paper
/// works with `⌈log n⌉ ≥ 1` everywhere; this is that quantity.
#[must_use]
pub fn log_n(n_bound: usize) -> usize {
    ceil_log2(n_bound).max(1)
}

/// Number of epochs for one BGI epidemic-broadcast window:
/// `c · (d_bound + log n)` — enough for the message to cross the network
/// and absorb the per-hop `Θ(log n)` tail, w.h.p.
#[must_use]
pub fn epidemic_window_epochs(n_bound: usize, d_bound: usize, c: usize) -> usize {
    c * (d_bound + log_n(n_bound)).max(1)
}

/// Rounds in one BGI epidemic-broadcast window.
#[must_use]
pub fn epidemic_window_rounds(n_bound: usize, d_bound: usize, delta_bound: usize, c: usize) -> u64 {
    (epidemic_window_epochs(n_bound, d_bound, c) * epoch_len(delta_bound)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_table() {
        let expect = [
            (0, 0),
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (1024, 10),
            (1025, 11),
        ];
        for (x, want) in expect {
            assert_eq!(ceil_log2(x), want, "x = {x}");
        }
    }

    #[test]
    fn epoch_len_is_at_least_one() {
        assert_eq!(epoch_len(0), 1);
        assert_eq!(epoch_len(1), 1);
        assert_eq!(epoch_len(2), 1);
        assert_eq!(epoch_len(3), 2);
        assert_eq!(epoch_len(16), 4);
    }

    #[test]
    fn window_scales_with_diameter_and_logn() {
        let w1 = epidemic_window_rounds(256, 10, 8, 2);
        assert_eq!(w1, (2 * (10 + 8) * 3) as u64);
        assert!(epidemic_window_rounds(256, 20, 8, 2) > w1);
        assert!(epidemic_window_rounds(1 << 16, 10, 8, 2) > w1);
    }

    #[test]
    fn log_n_is_at_least_one() {
        assert_eq!(log_n(1), 1);
        assert_eq!(log_n(2), 1);
        assert_eq!(log_n(1000), 10);
    }
}
