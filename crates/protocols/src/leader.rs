//! Stage 1: leader election by binary search over the id space.
//!
//! Among the *candidates* (nodes holding at least one packet, awake at
//! round 0), the highest id must win. The classic construction the paper
//! cites (Fact 1): binary-search the id space, one network-wide OR per
//! bit. Each OR is a 1-bit epidemic flood inside a fixed window of
//! `O((D + log n)·log Δ)` rounds: candidates whose id matches the probed
//! prefix initiate the flood, every informed node relays, and "heard a
//! flood by the window's end" answers the probe. `⌈log(id space)⌉`
//! windows give `O((D + log n)·log n·log Δ)` rounds in total.
//!
//! Non-candidates act as pure relays and need no id bookkeeping; every
//! candidate tracks the decided prefix locally (silence = 0, flood = 1),
//! so at the end all candidates agree on the winner id w.h.p., and the
//! winner knows it is the leader.

use rand::Rng;

use crate::epidemic::Epidemic;
use radio_net::message::MessageSize;

/// Parameters of a leader election, shared by all nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaderConfig {
    /// Bits in the id space (ids are `< 2^id_bits`).
    pub id_bits: u32,
    /// Rounds per OR window; see
    /// [`crate::timing::epidemic_window_rounds`].
    pub window_rounds: u64,
    /// Maximum-degree bound Δ (sets the Decay epoch length).
    pub delta_bound: usize,
}

impl LeaderConfig {
    /// Total rounds of the election: one window per id bit.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        u64::from(self.id_bits) * self.window_rounds
    }
}

/// The flood message of one probe window.
///
/// The window index makes stale receptions at window boundaries
/// harmless; on the wire this is a 1-bit alarm plus the implicit window
/// counter, within the model's message budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeMsg {
    /// Which binary-search iteration (= window) this flood answers.
    pub iter: u32,
}

impl MessageSize for ProbeMsg {
    fn size_bits(&self) -> usize {
        32
    }
}

/// Outcome of the election at one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaderOutcome {
    /// The elected leader's id (the maximum candidate id, w.h.p.).
    pub leader_id: u64,
    /// Whether this node is the leader.
    pub is_leader: bool,
}

/// Per-node leader-election state machine.
///
/// Drive it with `poll`/`deliver` using rounds local to the election
/// stage, then call [`LeaderElection::finalize`] once `total_rounds`
/// have elapsed and read [`LeaderElection::outcome`].
#[derive(Clone, Debug)]
pub struct LeaderElection {
    cfg: LeaderConfig,
    my_id: u64,
    candidate: bool,
    /// Bits decided so far, placed at their final positions (MSB-first).
    prefix: u64,
    /// Window currently being processed.
    window: u32,
    /// Whether this node initiated or heard the current window's flood.
    heard: bool,
    relay: Epidemic,
    finalized: bool,
}

impl LeaderElection {
    /// Creates the state machine. `candidate` nodes compete with id
    /// `my_id`; others only relay.
    ///
    /// # Panics
    ///
    /// Panics if `my_id` does not fit in `cfg.id_bits` bits.
    #[must_use]
    pub fn new(cfg: LeaderConfig, my_id: u64, candidate: bool) -> Self {
        assert!(
            cfg.id_bits >= 64 || my_id < (1u64 << cfg.id_bits),
            "id {my_id} does not fit in {} bits",
            cfg.id_bits
        );
        let mut le = LeaderElection {
            cfg,
            my_id,
            candidate,
            prefix: 0,
            window: 0,
            heard: false,
            relay: Epidemic::new(cfg.delta_bound, false),
            finalized: false,
        };
        le.arm_window(0);
        le
    }

    /// The probed bit position of window `w` (MSB-first).
    fn bit_pos(&self, w: u32) -> u32 {
        self.cfg.id_bits - 1 - w
    }

    /// `true` while this candidate's id still matches the decided prefix.
    fn alive(&self) -> bool {
        if !self.candidate {
            return false;
        }
        let w = self.window;
        if w == 0 {
            return true;
        }
        // Compare the top `w` bits of my_id with the prefix.
        let shift = self.cfg.id_bits - w;
        (self.my_id >> shift) == (self.prefix >> shift)
    }

    fn arm_window(&mut self, w: u32) {
        self.window = w;
        if w >= self.cfg.id_bits {
            return;
        }
        let initiator = self.alive() && (self.my_id >> self.bit_pos(w)) & 1 == 1;
        self.heard = initiator;
        self.relay.reset(initiator);
    }

    fn close_window(&mut self) {
        if self.window < self.cfg.id_bits && self.heard && self.candidate {
            self.prefix |= 1 << self.bit_pos(self.window);
        }
    }

    /// Advances internal window bookkeeping to the window containing
    /// `local_round`, closing completed windows on the way.
    fn sync(&mut self, local_round: u64) {
        if self.cfg.id_bits == 0 {
            return;
        }
        let target =
            u32::try_from(local_round / self.cfg.window_rounds).expect("window index fits u32");
        while self.window < target && self.window < self.cfg.id_bits {
            self.close_window();
            self.arm_window(self.window + 1);
        }
    }

    /// Transmit decision at `local_round` (rounds since the election
    /// began). Returns the probe message to flood, if any.
    pub fn poll(&mut self, local_round: u64, rng: &mut impl Rng) -> Option<ProbeMsg> {
        self.sync(local_round);
        if self.window >= self.cfg.id_bits {
            return None;
        }
        let within = local_round % self.cfg.window_rounds;
        self.relay
            .poll(within, rng)
            .then_some(ProbeMsg { iter: self.window })
    }

    /// Earliest future local round at which [`LeaderElection::poll`]
    /// may act again (see `radio_net::engine::Node::next_activity`).
    /// Call right after `poll(local_round)` so the window state is
    /// synced.
    ///
    /// An informed relay transmits by decay every round of the current
    /// window; an uninformed candidate is silent until the next window
    /// is armed (`sync` replays the skipped window bookkeeping
    /// deterministically at that poll); an uninformed non-candidate can
    /// only be activated by a reception, which voids the hint.
    #[must_use]
    pub fn next_activity(&self, local_round: u64) -> u64 {
        if self.window >= self.cfg.id_bits {
            return u64::MAX;
        }
        if self.relay.is_informed() {
            return local_round + 1;
        }
        if self.candidate {
            return u64::from(self.window + 1) * self.cfg.window_rounds;
        }
        u64::MAX
    }

    /// Handles a received probe flood.
    pub fn deliver(&mut self, local_round: u64, msg: &ProbeMsg) {
        self.sync(local_round);
        if msg.iter == self.window && self.window < self.cfg.id_bits {
            self.heard = true;
            self.relay.inform();
        }
    }

    /// Closes the final window. Call once `total_rounds` have elapsed;
    /// idempotent.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        while self.window < self.cfg.id_bits {
            self.close_window();
            self.window += 1;
            if self.window < self.cfg.id_bits {
                self.arm_window(self.window);
            }
        }
        self.finalized = true;
    }

    /// The election outcome. `Some` only for candidates (relays do not
    /// track the prefix) after [`LeaderElection::finalize`].
    #[must_use]
    pub fn outcome(&self) -> Option<LeaderOutcome> {
        (self.finalized && self.candidate).then_some(LeaderOutcome {
            leader_id: self.prefix,
            is_leader: self.prefix == self.my_id,
        })
    }
}

/// Standalone adapter running [`LeaderElection`] directly on a
/// [`radio_net::Engine`], for tests, examples and micro-benchmarks of
/// Stage 1 in isolation.
#[derive(Debug)]
pub struct ElectionNode {
    le: LeaderElection,
    rng: rand::rngs::SmallRng,
}

impl ElectionNode {
    /// Creates the adapter (see [`LeaderElection::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `my_id` does not fit in `cfg.id_bits` bits.
    #[must_use]
    pub fn new(cfg: LeaderConfig, my_id: u64, candidate: bool, rng: rand::rngs::SmallRng) -> Self {
        ElectionNode {
            le: LeaderElection::new(cfg, my_id, candidate),
            rng,
        }
    }

    /// Finalizes and reads the outcome (see [`LeaderElection::outcome`]).
    pub fn finalize(&mut self) -> Option<LeaderOutcome> {
        self.le.finalize();
        self.le.outcome()
    }
}

impl radio_net::engine::Node for ElectionNode {
    type Msg = ProbeMsg;
    fn poll(&mut self, round: u64) -> Option<ProbeMsg> {
        self.le.poll(round, &mut self.rng)
    }
    fn receive(&mut self, round: u64, msg: &ProbeMsg) {
        self.le.deliver(round, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing;
    use radio_net::engine::Engine;
    use radio_net::graph::NodeId;
    use radio_net::rng;
    use radio_net::topology::Topology;

    /// Runs an election where node i's id is `ids[i]` and the candidate
    /// set is `candidates`; returns per-candidate outcomes.
    fn run_election(
        topology: &Topology,
        ids: &[u64],
        candidates: &[usize],
        seed: u64,
    ) -> Vec<(usize, LeaderOutcome)> {
        let g = topology.build(seed).unwrap();
        let n = g.len();
        assert_eq!(ids.len(), n);
        let delta = g.max_degree();
        let d = g.diameter().unwrap();
        let id_space = usize::try_from(ids.iter().max().copied().unwrap_or(0) + 1).unwrap();
        let cfg = LeaderConfig {
            id_bits: u32::try_from(timing::ceil_log2(id_space).max(1)).unwrap(),
            window_rounds: timing::epidemic_window_rounds(n, d, delta, 3),
            delta_bound: delta,
        };
        let nodes: Vec<ElectionNode> = (0..n)
            .map(|i| {
                ElectionNode::new(
                    cfg,
                    ids[i],
                    candidates.contains(&i),
                    rng::stream(seed, i as u64),
                )
            })
            .collect();
        let awake: Vec<NodeId> = candidates.iter().map(|&c| NodeId::new(c)).collect();
        let mut e = Engine::new(g, nodes, awake).unwrap();
        e.run(cfg.total_rounds());
        let mut out = Vec::new();
        for (i, mut node) in e.into_nodes().into_iter().enumerate() {
            if let Some(o) = node.finalize() {
                out.push((i, o));
            }
        }
        out
    }

    #[test]
    fn highest_id_candidate_wins_on_path() {
        for seed in 0..5 {
            let ids: Vec<u64> = (0..20).map(|i| i as u64).collect();
            let outcomes = run_election(&Topology::Path { n: 20 }, &ids, &[2, 9, 17], seed);
            assert_eq!(outcomes.len(), 3);
            for (i, o) in &outcomes {
                assert_eq!(o.leader_id, 17, "seed {seed} node {i}");
                assert_eq!(o.is_leader, *i == 17, "seed {seed} node {i}");
            }
        }
    }

    #[test]
    fn works_with_arbitrary_ids_and_dense_graphs() {
        for seed in 0..5 {
            let ids = vec![12, 3, 30, 7, 25, 1, 19, 28, 2, 9];
            let outcomes =
                run_election(&Topology::Complete { n: 10 }, &ids, &[0, 1, 3, 5, 8], seed);
            // Max id among candidates {12, 3, 7, 1, 2} is 12 (node 0).
            for (i, o) in &outcomes {
                assert_eq!(o.leader_id, 12, "seed {seed}");
                assert_eq!(o.is_leader, *i == 0);
            }
        }
    }

    #[test]
    fn single_candidate_elects_itself() {
        let ids: Vec<u64> = (0..12).map(|i| i as u64).collect();
        let outcomes = run_election(&Topology::Grid2d { rows: 3, cols: 4 }, &ids, &[5], 1);
        assert_eq!(
            outcomes,
            vec![(
                5,
                LeaderOutcome {
                    leader_id: 5,
                    is_leader: true
                }
            )]
        );
    }

    #[test]
    fn candidate_with_id_zero() {
        let ids: Vec<u64> = vec![0, 1, 2, 3];
        let outcomes = run_election(&Topology::Path { n: 4 }, &ids, &[0], 2);
        assert_eq!(outcomes[0].1.leader_id, 0);
        assert!(outcomes[0].1.is_leader);
    }

    #[test]
    fn relays_are_silent_nonparticipants() {
        // Non-candidates return no outcome.
        let ids: Vec<u64> = (0..6).map(|i| i as u64).collect();
        let outcomes = run_election(&Topology::Path { n: 6 }, &ids, &[1, 4], 3);
        let holders: Vec<usize> = outcomes.iter().map(|(i, _)| *i).collect();
        assert_eq!(holders, vec![1, 4]);
    }

    #[test]
    fn random_topologies_and_many_seeds() {
        for seed in 0..8 {
            let n = 30;
            let ids: Vec<u64> = (0..n as u64).map(|i| (i * 7) % 32).collect();
            let candidates: Vec<usize> = vec![0, 5, 11, 23, 29];
            let expect = candidates.iter().map(|&c| ids[c]).max().unwrap();
            let outcomes = run_election(&Topology::Gnp { n, p: 0.15 }, &ids, &candidates, seed);
            for (i, o) in &outcomes {
                assert_eq!(o.leader_id, expect, "seed {seed} node {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_id_rejected() {
        let cfg = LeaderConfig {
            id_bits: 3,
            window_rounds: 10,
            delta_bound: 2,
        };
        let _ = LeaderElection::new(cfg, 8, true);
    }

    #[test]
    fn outcome_requires_finalize() {
        let cfg = LeaderConfig {
            id_bits: 2,
            window_rounds: 4,
            delta_bound: 2,
        };
        let mut le = LeaderElection::new(cfg, 3, true);
        assert_eq!(le.outcome(), None);
        le.finalize();
        let o = le.outcome().unwrap();
        // Lone candidate: every probed bit it holds becomes 1 => itself.
        assert_eq!(o.leader_id, 3);
        assert!(o.is_leader);
        // Idempotent.
        le.finalize();
        assert_eq!(le.outcome().unwrap().leader_id, 3);
    }

    #[test]
    fn total_rounds_formula() {
        let cfg = LeaderConfig {
            id_bits: 5,
            window_rounds: 12,
            delta_bound: 4,
        };
        assert_eq!(cfg.total_rounds(), 60);
    }
}
