//! BGI randomized epidemic broadcast.
//!
//! Every node that knows the message runs the [`Decay`](crate::decay)
//! schedule; an uninformed node with at least one informed neighbor
//! receives within an epoch with constant probability, so the message
//! crosses the network in `O((D + log n)·log Δ)` rounds w.h.p.
//!
//! The paper uses this machinery three times:
//!
//! 1. `ALARM` (Stage 3): nodes with unacknowledged packets flood a 1-bit
//!    alarm; the many-sources case reduces to single-source broadcast on
//!    a graph with one auxiliary node (paper, §2.3.1).
//! 2. The network-wide OR inside leader election (Stage 1).
//! 3. As the transmission pattern of `FORWARD` (Stage 4), where the
//!    payload is re-coded on every transmission instead of repeated.

use rand::Rng;

use crate::decay::Decay;

/// Relay state for one epidemic-broadcast window.
///
/// The state machine tracks only *whether this node is informed*; the
/// message content (if any) is the caller's business. `poll` returns the
/// transmit/listen decision; the caller attaches the payload.
///
/// ```
/// use protocols::epidemic::Epidemic;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let mut relay = Epidemic::new(8, false);
/// assert!(!relay.poll(0, &mut rng)); // uninformed nodes stay silent
/// relay.inform();
/// assert!(relay.is_informed());
/// ```
#[derive(Clone, Debug)]
pub struct Epidemic {
    decay: Decay,
    informed: bool,
}

impl Epidemic {
    /// A relay for maximum degree `delta_bound`; `initiator` nodes start
    /// informed.
    #[must_use]
    pub fn new(delta_bound: usize, initiator: bool) -> Self {
        Epidemic {
            decay: Decay::new(delta_bound),
            informed: initiator,
        }
    }

    /// Whether this node knows the message.
    #[must_use]
    pub fn is_informed(&self) -> bool {
        self.informed
    }

    /// Marks the node informed (call on reception of the flooded message).
    pub fn inform(&mut self) {
        self.informed = true;
    }

    /// Re-arms the state machine for a fresh window (e.g. the next
    /// leader-election iteration or the next `ALARM` epoch).
    pub fn reset(&mut self, initiator: bool) {
        self.informed = initiator;
    }

    /// Transmit/listen decision at `local_round` (rounds within the
    /// current window). Uninformed nodes never transmit.
    #[must_use]
    pub fn poll(&mut self, local_round: u64, rng: &mut impl Rng) -> bool {
        self.informed && self.decay.should_transmit(local_round, rng)
    }

    /// The underlying Decay schedule.
    #[must_use]
    pub fn decay(&self) -> Decay {
        self.decay
    }
}

/// Standalone single-message broadcast node for tests, examples and
/// micro-benchmarks: floods a `u64` token from the sources to everyone.
#[derive(Debug)]
pub struct EpidemicNode {
    state: Epidemic,
    message: Option<u64>,
    rng: rand::rngs::SmallRng,
}

impl EpidemicNode {
    /// A node; `message` is `Some` for sources.
    #[must_use]
    pub fn new(delta_bound: usize, message: Option<u64>, rng: rand::rngs::SmallRng) -> Self {
        EpidemicNode {
            state: Epidemic::new(delta_bound, message.is_some()),
            message,
            rng,
        }
    }

    /// The token this node knows, if informed.
    #[must_use]
    pub fn message(&self) -> Option<u64> {
        self.message
    }
}

impl radio_net::engine::Node for EpidemicNode {
    type Msg = u64;

    fn poll(&mut self, round: u64) -> Option<u64> {
        if self.state.poll(round, &mut self.rng) {
            self.message
        } else {
            None
        }
    }

    fn receive(&mut self, _round: u64, msg: &u64) {
        if self.message.is_none() {
            self.message = Some(*msg);
            self.state.inform();
        }
    }

    fn is_done(&self) -> bool {
        self.message.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::epidemic_window_rounds;
    use radio_net::engine::Engine;
    use radio_net::graph::NodeId;
    use radio_net::rng;
    use radio_net::topology::Topology;

    fn run_broadcast(topology: &Topology, sources: &[usize], seed: u64) -> (bool, u64) {
        let g = topology.build(seed).unwrap();
        let n = g.len();
        let delta = g.max_degree();
        let d = g.diameter().unwrap();
        let nodes: Vec<EpidemicNode> = (0..n)
            .map(|i| {
                EpidemicNode::new(
                    delta,
                    sources.contains(&i).then_some(42),
                    rng::stream(seed, i as u64),
                )
            })
            .collect();
        let awake: Vec<NodeId> = sources.iter().map(|&s| NodeId::new(s)).collect();
        let mut e = Engine::new(g, nodes, awake).unwrap();
        let budget = epidemic_window_rounds(n, d, delta, 4);
        let done = e.run_until_all_done(budget);
        (done, e.round())
    }

    #[test]
    fn broadcast_completes_within_window_on_path() {
        for seed in 0..5 {
            let (done, _) = run_broadcast(&Topology::Path { n: 40 }, &[0], seed);
            assert!(done, "seed {seed}");
        }
    }

    #[test]
    fn broadcast_completes_on_star_and_clique() {
        for seed in 0..5 {
            let (done, _) = run_broadcast(&Topology::Star { n: 40 }, &[1], seed);
            assert!(done, "star seed {seed}");
            let (done, _) = run_broadcast(&Topology::Complete { n: 40 }, &[3], seed);
            assert!(done, "clique seed {seed}");
        }
    }

    #[test]
    fn broadcast_completes_on_random_graphs() {
        for seed in 0..5 {
            let (done, _) = run_broadcast(&Topology::Gnp { n: 60, p: 0.12 }, &[0], seed);
            assert!(done, "gnp seed {seed}");
            let (done, _) = run_broadcast(&Topology::RandomTree { n: 60 }, &[0], seed);
            assert!(done, "tree seed {seed}");
        }
    }

    #[test]
    fn many_sources_behave_like_one(/* the ALARM reduction */) {
        for seed in 0..5 {
            let (done, rounds_many) =
                run_broadcast(&Topology::Grid2d { rows: 6, cols: 6 }, &[0, 7, 35], seed);
            assert!(done);
            let (done, rounds_one) =
                run_broadcast(&Topology::Grid2d { rows: 6, cols: 6 }, &[0], seed);
            assert!(done);
            // More sources can only help (statistically); sanity-check the
            // many-source run is not drastically slower.
            assert!(
                rounds_many <= rounds_one * 3 + 10,
                "seed {seed}: many {rounds_many} vs one {rounds_one}"
            );
        }
    }

    #[test]
    fn sleeping_relays_wake_and_relay() {
        // Only the source starts awake; the flood must still cross.
        let (done, _) = run_broadcast(&Topology::Path { n: 30 }, &[0], 9);
        assert!(done);
    }

    #[test]
    fn no_source_means_silence() {
        let g = Topology::Path { n: 10 }.build(0).unwrap();
        let nodes: Vec<EpidemicNode> = (0..10)
            .map(|i| EpidemicNode::new(2, None, rng::stream(0, i as u64)))
            .collect();
        let mut e = Engine::new(g, nodes, (0..10).map(NodeId::new)).unwrap();
        e.run(200);
        assert_eq!(e.stats().transmissions, 0);
        assert!(e.nodes().iter().all(|n| n.message().is_none()));
    }
}
