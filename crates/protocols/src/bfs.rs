//! Stage 2: distributed BFS-tree construction (BGI 1992).
//!
//! The stage runs `d_bound` phases of `Θ(log n · log Δ)` rounds. In phase
//! `d` exactly the nodes that learned distance `d` announce
//! `(my id, my distance)` with Decay; an unlabeled listener adopts the
//! first announcement it receives, setting `parent = sender` and
//! `distance = sender's + 1`. By induction every node at true distance
//! `d` is labeled during phase `d-1`, w.h.p. (Theorem 1 of the paper).

use rand::Rng;

use crate::decay::Decay;
use radio_net::message::MessageSize;

/// Parameters of the BFS stage, shared by all nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsConfig {
    /// Rounds per phase (`c · log n` Decay epochs).
    pub phase_rounds: u64,
    /// Number of phases (an upper bound on the diameter).
    pub d_bound: usize,
    /// Maximum-degree bound Δ.
    pub delta_bound: usize,
}

impl BfsConfig {
    /// Total rounds of the BFS stage.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.phase_rounds * self.d_bound as u64
    }
}

/// A BFS announcement: the transmitter's id and distance-from-root.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsMsg {
    /// Transmitter's id.
    pub id: u64,
    /// Transmitter's distance from the root.
    pub dist: u32,
}

impl MessageSize for BfsMsg {
    fn size_bits(&self) -> usize {
        64 + 32
    }
}

/// A node's place in the constructed tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsLabel {
    /// Distance from the root.
    pub dist: u32,
    /// Parent id on the BFS path to the root (`None` for the root).
    pub parent: Option<u64>,
}

/// Per-node BFS-construction state machine.
///
/// The root (the Stage 1 leader) constructs itself labeled with distance
/// 0; everyone else starts unlabeled and adopts the first announcement
/// received.
#[derive(Clone, Debug)]
pub struct BfsBuild {
    cfg: BfsConfig,
    my_id: u64,
    label: Option<BfsLabel>,
    decay: Decay,
}

impl BfsBuild {
    /// Creates the state machine; `is_root` marks the Stage 1 leader.
    #[must_use]
    pub fn new(cfg: BfsConfig, my_id: u64, is_root: bool) -> Self {
        BfsBuild {
            cfg,
            my_id,
            label: is_root.then_some(BfsLabel {
                dist: 0,
                parent: None,
            }),
            decay: Decay::new(cfg.delta_bound),
        }
    }

    /// This node's label, once assigned.
    #[must_use]
    pub fn label(&self) -> Option<BfsLabel> {
        self.label
    }

    /// Transmit decision at `local_round` (rounds since the stage began).
    pub fn poll(&mut self, local_round: u64, rng: &mut impl Rng) -> Option<BfsMsg> {
        let label = self.label?;
        let phase = local_round / self.cfg.phase_rounds;
        if u64::from(label.dist) != phase || phase >= self.cfg.d_bound as u64 {
            return None;
        }
        let within = local_round % self.cfg.phase_rounds;
        self.decay.should_transmit(within, rng).then_some(BfsMsg {
            id: self.my_id,
            dist: label.dist,
        })
    }

    /// Earliest future local round at which [`BfsBuild::poll`] may act
    /// again (see `radio_net::engine::Node::next_activity`). A node
    /// only ever transmits during the one phase equal to its distance
    /// label: unlabelled → silent until a reception; phase still ahead
    /// → parked until that phase starts; phase passed (or out of
    /// `d_bound`) → silent forever. Labels are permanent (the first
    /// announcement wins), so the hint can only be voided early by a
    /// reception, which the engine handles.
    #[must_use]
    pub fn next_activity(&self, local_round: u64) -> u64 {
        let Some(label) = self.label else {
            return u64::MAX;
        };
        let dist = u64::from(label.dist);
        if dist >= self.cfg.d_bound as u64 {
            return u64::MAX;
        }
        let phase = local_round / self.cfg.phase_rounds;
        if phase < dist {
            return dist * self.cfg.phase_rounds;
        }
        if phase == dist {
            return local_round + 1;
        }
        u64::MAX
    }

    /// Handles a received announcement; the first one labels the node.
    pub fn deliver(&mut self, _local_round: u64, msg: &BfsMsg) {
        if self.label.is_none() {
            self.label = Some(BfsLabel {
                dist: msg.dist + 1,
                parent: Some(msg.id),
            });
        }
    }
}

/// Standalone adapter running [`BfsBuild`] directly on a
/// [`radio_net::Engine`], for tests, examples and micro-benchmarks of
/// the BFS stage in isolation.
#[derive(Debug)]
pub struct BfsNode {
    bfs: BfsBuild,
    rng: rand::rngs::SmallRng,
}

impl BfsNode {
    /// Creates the adapter (see [`BfsBuild::new`]).
    #[must_use]
    pub fn new(cfg: BfsConfig, my_id: u64, is_root: bool, rng: rand::rngs::SmallRng) -> Self {
        BfsNode {
            bfs: BfsBuild::new(cfg, my_id, is_root),
            rng,
        }
    }

    /// The node's label, once assigned.
    #[must_use]
    pub fn label(&self) -> Option<BfsLabel> {
        self.bfs.label()
    }
}

impl radio_net::engine::Node for BfsNode {
    type Msg = BfsMsg;
    fn poll(&mut self, round: u64) -> Option<BfsMsg> {
        self.bfs.poll(round, &mut self.rng)
    }
    fn receive(&mut self, round: u64, msg: &BfsMsg) {
        self.bfs.deliver(round, msg);
    }
    fn is_done(&self) -> bool {
        self.bfs.label().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing;
    use radio_net::engine::Engine;
    use radio_net::graph::NodeId;
    use radio_net::rng;
    use radio_net::topology::Topology;

    /// Builds the tree and checks every label against true BFS distances.
    fn check_bfs(topology: &Topology, root: usize, seed: u64) {
        let g = topology.build(seed).unwrap();
        let n = g.len();
        let delta = g.max_degree();
        let d = g.diameter().unwrap().max(1);
        let cfg = BfsConfig {
            phase_rounds: (3 * timing::log_n(n) * timing::epoch_len(delta)) as u64,
            d_bound: d,
            delta_bound: delta,
        };
        let truth = g.bfs_distances(NodeId::new(root));
        let nodes: Vec<BfsNode> = (0..n)
            .map(|i| BfsNode::new(cfg, i as u64, i == root, rng::stream(seed, i as u64)))
            .collect();
        let mut e = Engine::new(g, nodes, [NodeId::new(root)]).unwrap();
        e.run(cfg.total_rounds());
        let labels: Vec<Option<BfsLabel>> = e.nodes().iter().map(BfsNode::label).collect();
        for i in 0..n {
            let label = labels[i].unwrap_or_else(|| panic!("node {i} unlabeled (seed {seed})"));
            assert_eq!(
                label.dist as usize,
                truth[i].unwrap(),
                "node {i} wrong distance (seed {seed})"
            );
            if i == root {
                assert_eq!(label.parent, None);
            } else {
                let p = label.parent.unwrap() as usize;
                assert_eq!(
                    truth[p].unwrap() + 1,
                    truth[i].unwrap(),
                    "node {i}'s parent {p} not one ring closer"
                );
                assert!(
                    e.graph().has_edge(NodeId::new(i), NodeId::new(p)),
                    "node {i}'s parent {p} not adjacent"
                );
            }
        }
    }

    #[test]
    fn bfs_correct_on_path() {
        for seed in 0..4 {
            check_bfs(&Topology::Path { n: 24 }, 0, seed);
            check_bfs(&Topology::Path { n: 24 }, 11, seed);
        }
    }

    #[test]
    fn bfs_correct_on_grid_and_star() {
        for seed in 0..4 {
            check_bfs(&Topology::Grid2d { rows: 5, cols: 6 }, 0, seed);
            check_bfs(&Topology::Star { n: 30 }, 3, seed);
        }
    }

    #[test]
    fn bfs_correct_on_random_graphs() {
        for seed in 0..4 {
            check_bfs(&Topology::Gnp { n: 40, p: 0.12 }, 0, seed);
            check_bfs(&Topology::RandomTree { n: 40 }, 7, seed);
            check_bfs(
                &Topology::UnitDisk {
                    n: 40,
                    radius: 0.35,
                },
                1,
                seed,
            );
        }
    }

    #[test]
    fn bfs_on_clique_labels_everyone_distance_one() {
        check_bfs(&Topology::Complete { n: 16 }, 4, 0);
    }

    #[test]
    fn root_never_relabels() {
        let cfg = BfsConfig {
            phase_rounds: 8,
            d_bound: 3,
            delta_bound: 4,
        };
        let mut root = BfsBuild::new(cfg, 0, true);
        root.deliver(0, &BfsMsg { id: 9, dist: 2 });
        assert_eq!(
            root.label(),
            Some(BfsLabel {
                dist: 0,
                parent: None
            })
        );
    }

    #[test]
    fn first_announcement_wins() {
        let cfg = BfsConfig {
            phase_rounds: 8,
            d_bound: 3,
            delta_bound: 4,
        };
        let mut node = BfsBuild::new(cfg, 5, false);
        node.deliver(0, &BfsMsg { id: 1, dist: 0 });
        node.deliver(1, &BfsMsg { id: 2, dist: 1 });
        assert_eq!(
            node.label(),
            Some(BfsLabel {
                dist: 1,
                parent: Some(1)
            })
        );
    }

    #[test]
    fn total_rounds_formula() {
        let cfg = BfsConfig {
            phase_rounds: 10,
            d_bound: 7,
            delta_bound: 4,
        };
        assert_eq!(cfg.total_rounds(), 70);
    }
}
