//! The Decay transmission schedule (Bar-Yehuda, Goldreich & Itai, 1992).
//!
//! In each *epoch* of `⌈log Δ⌉` rounds, an active node transmits in round
//! `s = 0, 1, …` of the epoch with probability `1/2^(s+1)`. The classic
//! Decay lemma: if a listener has between 1 and Δ transmitting-capable
//! neighbors, some round of the epoch has an expected number of
//! transmitters near 1, and the listener receives with probability
//! bounded below by a constant. Experiment E10 measures that constant.

use rand::Rng;

use crate::timing::epoch_len;

/// The Decay schedule for a given maximum-degree bound.
///
/// Stateless apart from the epoch length; every "active" participant
/// draws independently each round.
///
/// ```
/// use protocols::decay::Decay;
///
/// let decay = Decay::new(8); // Δ ≤ 8 → epochs of 3 rounds
/// assert_eq!(decay.epoch_len(), 3);
/// assert_eq!(decay.probability(0), 0.5);
/// assert_eq!(decay.probability(5), 0.125); // round 5 = epoch round 2
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decay {
    epoch_len: usize,
}

impl Decay {
    /// Schedule for maximum degree at most `delta_bound`.
    #[must_use]
    pub fn new(delta_bound: usize) -> Self {
        Decay {
            epoch_len: epoch_len(delta_bound),
        }
    }

    /// Rounds per epoch (`⌈log2 Δ⌉`, at least 1).
    #[must_use]
    pub fn epoch_len(&self) -> usize {
        self.epoch_len
    }

    /// Epoch index of a local round.
    #[must_use]
    pub fn epoch_of(&self, local_round: u64) -> u64 {
        local_round / self.epoch_len as u64
    }

    /// Transmission probability at `local_round` (position within the
    /// epoch selects the rung of the `1/2, 1/4, …` ladder).
    #[must_use]
    pub fn probability(&self, local_round: u64) -> f64 {
        let s = (local_round as usize % self.epoch_len) as i32;
        0.5f64.powi(s + 1)
    }

    /// Draws the transmit/listen decision for an active node at
    /// `local_round`.
    #[must_use]
    pub fn should_transmit(&self, local_round: u64, rng: &mut impl Rng) -> bool {
        rng.gen_bool(self.probability(local_round))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_net::engine::{Engine, Node};
    use radio_net::graph::NodeId;
    use radio_net::rng;
    use radio_net::topology;
    use rand::rngs::SmallRng;

    #[test]
    fn ladder_probabilities() {
        let d = Decay::new(16); // epoch_len 4
        assert_eq!(d.epoch_len(), 4);
        let expect = [0.5, 0.25, 0.125, 0.0625, 0.5, 0.25];
        for (r, want) in expect.into_iter().enumerate() {
            assert!((d.probability(r as u64) - want).abs() < 1e-12);
        }
        assert_eq!(d.epoch_of(7), 1);
        assert_eq!(d.epoch_of(8), 2);
    }

    #[test]
    fn degenerate_delta_still_transmits() {
        let d = Decay::new(1);
        assert_eq!(d.epoch_len(), 1);
        assert_eq!(d.probability(0), 0.5);
    }

    /// A Decay sender on a star: `t` leaves are active, the hub listens.
    struct DecayLeaf {
        decay: Decay,
        active: bool,
        rng: SmallRng,
    }

    #[derive(Default)]
    struct CountingHub {
        received: usize,
    }

    enum Star {
        Leaf(DecayLeaf),
        Hub(CountingHub),
    }

    impl Node for Star {
        type Msg = u8;
        fn poll(&mut self, round: u64) -> Option<u8> {
            match self {
                Star::Leaf(l) => {
                    (l.active && l.decay.should_transmit(round, &mut l.rng)).then_some(1)
                }
                Star::Hub(_) => None,
            }
        }
        fn receive(&mut self, _round: u64, _msg: &u8) {
            if let Star::Hub(h) = self {
                h.received += 1;
            }
        }
    }

    /// The Decay lemma, empirically: for any number of active neighbors
    /// `t ∈ {1, …, Δ}`, the hub receives within one epoch with
    /// probability ≥ some constant (we check ≥ 0.2, comfortably below the
    /// analytic bound, and far above what a fixed-probability scheme
    /// achieves at t = Δ).
    #[test]
    fn decay_lemma_constant_reception_probability() {
        let delta: usize = 32;
        let trials = 400;
        for t in [1usize, 2, 5, 16, 32] {
            let mut successes = 0;
            for trial in 0..trials {
                let g = topology::star(delta + 1).unwrap();
                let nodes: Vec<Star> = (0..=delta)
                    .map(|i| {
                        if i == 0 {
                            Star::Hub(CountingHub::default())
                        } else {
                            Star::Leaf(DecayLeaf {
                                decay: Decay::new(delta),
                                active: i <= t,
                                rng: rng::stream(trial as u64, i as u64),
                            })
                        }
                    })
                    .collect();
                let mut e = Engine::new(g, nodes, (0..=delta).map(NodeId::new)).unwrap();
                e.run(Decay::new(delta).epoch_len() as u64);
                if let Star::Hub(h) = e.node(NodeId::new(0)) {
                    if h.received > 0 {
                        successes += 1;
                    }
                }
            }
            let p = f64::from(successes) / f64::from(trials as u32);
            assert!(p >= 0.2, "t = {t}: reception probability {p:.3} < 0.2");
        }
    }
}
