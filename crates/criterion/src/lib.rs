//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no crates.io access, so
//! the real crate cannot be fetched. This shim implements the API subset
//! the workspace's benches use ([`Criterion`], benchmark groups,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`])
//! with compatible signatures. Instead of criterion's statistical
//! machinery it runs a fixed number of timed samples after a short
//! warm-up and prints median / min / max per benchmark — enough to track
//! hot-path regressions by eye; the `perf_smoke` binary (see
//! `results/BENCH_engine.json`) is the machine-readable perf record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration batching mode for [`Bencher::iter_batched`]. The shim
/// times routines individually regardless of the variant, so this only
/// mirrors the upstream signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Measured per-sample wall times, filled by `iter*`.
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            times: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` (its return value is black-boxed so the work is
    /// not optimized away).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }
}

fn report(label: &str, times: &mut [Duration]) {
    if times.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let min = times[0];
    let max = times[times.len() - 1];
    println!(
        "{label:<40} median {median:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        times.len()
    );
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &mut b.times);
        self
    }

    /// Opens a named group of benchmarks (shares the group's sample
    /// size; names are printed as `group/bench`).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks; see [`Criterion::benchmark_group`].
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{name}", self.name), &mut b.times);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this just consumes the group).
    pub fn finish(self) {}
}

/// Declares a benchmark group function that runs each target with a
/// default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // warm-up + samples
        assert_eq!(runs, 21);
    }

    #[test]
    fn group_sample_size_is_respected() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        let mut setups = 0u32;
        let mut runs = 0u32;
        g.bench_function("batched", |b| {
            b.iter_batched(|| setups += 1, |()| runs += 1, BatchSize::SmallInput);
        });
        g.finish();
        assert_eq!(setups, 6);
        assert_eq!(runs, 6);
    }
}
