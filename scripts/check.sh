#!/bin/sh
# Full local gate: release build, tests, clippy with warnings denied.
#
# Dependency policy: this repo must build offline. The only external
# crates are the in-repo shims under crates/rand, crates/proptest and
# crates/criterion (path dependencies in the workspace Cargo.toml).
# Do NOT add crates.io dependencies — CI and the reproduction
# environment have no registry access.
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

echo "check.sh: all gates passed"
