#!/bin/sh
# Full local gate: release build, tests, clippy with warnings denied.
#
# Dependency policy: this repo must build offline. The only external
# crates are the in-repo shims under crates/rand, crates/proptest and
# crates/criterion (path dependencies in the workspace Cargo.toml).
# Do NOT add crates.io dependencies — CI and the reproduction
# environment have no registry access.
set -eu
cd "$(dirname "$0")/.."

cargo fmt --check
# --workspace so the bench path (perf_smoke and the exp_* binaries) is
# compile-checked on every run, even when every bench stage below is
# skipped via KB_SKIP_PERF=1 without KB_PERF=1.
cargo build --release --workspace
cargo test -q
cargo clippy --all-targets -- -D warnings

# Fault-injection smoke: the quick E17 configuration (grid 16x16, every
# fault family, 2 seeds) must run to completion and emit its JSON. This
# exercises the whole fault stack — spec parsing, per-seed model
# construction, the faulted engine hooks, stage attribution — in a few
# seconds.
KB_SCALE=quick KB_E17_OUT=target/E17_faults_smoke.json \
    cargo run --release -q -p kbcast-bench --bin exp_e17_faults
[ -s target/E17_faults_smoke.json ] || {
    echo "check.sh: fault smoke produced no target/E17_faults_smoke.json" >&2
    exit 1
}

# Verify smoke: the quick E9/E13 configurations re-run with the online
# verifiers on (KB_VERIFY=1 installs the ModelChecker + StageInvariants
# stack and makes E13 score its Clopper-Pearson bound on verified
# sessions). Any radio-axiom or stage-invariant violation turns into
# Error::VerificationFailed with the offending seed and fails the run.
KB_SCALE=quick KB_VERIFY=1 \
    cargo run --release -q -p kbcast-bench --bin exp_e9_collection
KB_SCALE=quick KB_VERIFY=1 \
    cargo run --release -q -p kbcast-bench --bin exp_e13_whp

# Trace smoke: the quick E18 configuration re-runs the three protocols
# with round tracing on and must emit all three artifact forms — the
# summary JSON (with its asserted stage-rounds-sum-to-total check), the
# per-round JSONL event stream and the Chrome-trace span file. The
# grep checks pin the schema markers the external consumers key on
# (JSONL "type" discriminants; Chrome "ph" duration events).
KB_SCALE=quick KB_TRACE=1 \
    KB_E18_OUT=target/E18_trace_smoke.json \
    KB_E18_JSONL=target/E18_trace_smoke.jsonl \
    KB_E18_CHROME=target/E18_trace_smoke_chrome.json \
    cargo run --release -q -p kbcast-bench --bin exp_e18_trace
for marker in '"type": "meta"' '"type": "round"' '"type": "span"'; do
    grep -q "$marker" target/E18_trace_smoke.jsonl || {
        echo "check.sh: trace smoke JSONL lacks $marker" >&2
        exit 1
    }
done
grep -q '"ph": "X"' target/E18_trace_smoke_chrome.json || {
    echo "check.sh: trace smoke Chrome file lacks duration spans" >&2
    exit 1
}
grep -q '"per_stage"' target/E18_trace_smoke.json || {
    echo "check.sh: trace smoke summary lacks a per-stage breakdown" >&2
    exit 1
}

# Streaming smoke: the quick E19 configuration runs a short λ-sweep of
# the streaming (continuous-arrival) sessions in both pipeline modes.
# The binary itself aborts on packet loss below the measured knee (the
# delivery curve must be monotone in λ); the greps pin the JSON schema
# markers the plotting consumers key on — the sweep entries, the
# one-shot reference service rates and the per-(topology, mode) knees.
KB_SCALE=quick KB_E19_OUT=target/E19_saturation_smoke.json \
    cargo run --release -q -p kbcast-bench --bin exp_e19_saturation
for marker in '"experiment": "E19_saturation"' '"entries"' '"references"' \
    '"knees"' '"knee_lambda"' '"queue_max"' '"p99"'; do
    grep -q "$marker" target/E19_saturation_smoke.json || {
        echo "check.sh: streaming smoke JSON lacks $marker" >&2
        exit 1
    }
done

# Service smoke: the kbcast-serve / kbcast-drive pair end to end. The
# driver generates a short heavy-ish session (with a mid-run set_faults
# flip and recovery), records its request script, runs it against a
# spawned kbcast-serve child per session AND the embedded in-process
# service, and exits non-zero unless the two outcomes match exactly and
# every packet was delivered with zero verify violations. The recorded
# script is then piped into a bare kbcast-serve process and the response
# stream is grepped for the line-protocol schema markers external
# consumers key on.
cargo build --release -q -p kbcast-serve
./target/release/kbcast-drive \
    --sessions 2 --topology 'grid(3x4)' --protocol stream-seq \
    --seed 5 --lambda 0.01 --window 2000 \
    --flip 'uniform:rate=0.02@600+1500' --verify \
    --serve target/release/kbcast-serve --compare \
    --record target/serve_smoke_session.jsonl \
    > target/serve_smoke_report.txt
grep -q 'delivered=true' target/serve_smoke_report.txt || {
    echo "check.sh: serve smoke report lacks delivered=true" >&2
    exit 1
}
./target/release/kbcast-serve \
    < target/serve_smoke_session.jsonl \
    > target/serve_smoke_responses.jsonl
for marker in '"ok":true' '"op":"init"' '"op":"inject"' '"op":"set_faults"' \
    '"op":"run_until_drained"' '"completed":true' '"all_delivered":true' \
    '"violations":0' '"p99"' '"throughput"' '"op":"shutdown"'; do
    grep -q "$marker" target/serve_smoke_responses.jsonl || {
        echo "check.sh: serve smoke responses lack $marker" >&2
        exit 1
    }
done

# CD smoke: the quick E21 configuration (grid 8x8, every fault family,
# ghk vs coded vs bii) with the online verifiers on. KB_VERIFY=1 makes
# every ghk session run on the WithCd engine under the CD-aware
# ModelChecker (noise iff >= 2 masked transmitters or jamming) plus the
# GhkInvariants stage checks, so a CD-axiom or GHK-protocol regression
# fails the run with the offending seed; the no-CD protocols in the
# same sweep pin that cd=false still rejects any reported noise.
KB_SCALE=quick KB_VERIFY=1 KB_E21_OUT=target/E21_cd_smoke.json \
    cargo run --release -q -p kbcast-bench --bin exp_e21_cd
for marker in '"experiment": "E21_cd"' '"protocol": "ghk"' '"clean_elections"'; do
    grep -q "$marker" target/E21_cd_smoke.json || {
        echo "check.sh: cd smoke JSON lacks $marker" >&2
        exit 1
    }
done

# Churn smoke: the quick E22 configuration (grid 8x8, the full churn
# grid — edge-rho ladder, waypoint mobility, periodic partition — over
# all four protocol families) with the online verifiers on. KB_VERIFY=1
# makes every churned session re-derive against the churn-aware
# ModelChecker's independent topology replica, so a reshape drifting out
# of lockstep with the engine fails the run with the offending seed. The
# greps pin the JSON schema plus the degradation law (delivered mass
# non-increasing along the edge-rho ladder).
KB_SCALE=quick KB_VERIFY=1 KB_E22_OUT=target/E22_churn_smoke.json \
    cargo run --release -q -p kbcast-bench --bin exp_e22_churn
for marker in '"experiment": "E22_churn"' '"monotone_degradation": true' \
    '"churn": "edge:rho=0.08,heal=0.25"' \
    '"churn": "waypoint:radius=0.45,speed=0.01"' \
    '"churn": "partition:at=100,heal=400,period=800"' \
    '"protocol": "dynamic"' '"protocol": "ghk"'; do
    grep -q "$marker" target/E22_churn_smoke.json || {
        echo "check.sh: churn smoke JSON lacks $marker" >&2
        exit 1
    }
done

# Engine-throughput regression gate (KB_SKIP_PERF=1 skips the ~1 min
# benchmark, e.g. on loaded or throttled machines where wall-clock
# numbers are meaningless).
if [ "${KB_SKIP_PERF:-0}" != "1" ]; then
    sh scripts/perf_gate.sh
fi

# Full perf sweep (opt-in: KB_PERF=1). Runs perf_smoke at full scale —
# including the scale-out scenarios (grid256x256 and the million-node
# unit disk), which take minutes — writing to a scratch path so the
# committed results/BENCH_engine.json baseline is only updated
# deliberately. perf_smoke asserts all_done per scenario, so this also
# smoke-tests protocol completion at scale.
if [ "${KB_PERF:-0}" = "1" ]; then
    KB_SCALE=full KB_BENCH_OUT=target/BENCH_engine_full.json \
        cargo run --release -q -p kbcast-bench --bin perf_smoke
    [ -s target/BENCH_engine_full.json ] || {
        echo "check.sh: perf sweep produced no target/BENCH_engine_full.json" >&2
        exit 1
    }
fi

echo "check.sh: all gates passed"
