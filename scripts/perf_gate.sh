#!/bin/sh
# Perf gate: the engine hot loop must not regress. Reruns perf_smoke
# (quick scale, scratch output via KB_BENCH_OUT) and fails if either
# gated grid scenario drops more than 35% below the committed baseline
# in results/BENCH_engine.json, or below its absolute floor.
#
# perf_smoke drives Engine<_, NoFaults> with an Observer whose
# DETAIL = false, so holding this floor is the zero-cost proof for
# five opt-in subsystems at once:
#   - faults: FaultModel::ENABLED is false for NoFaults and every fault
#     hook in the hot loop is behind `if F::ENABLED`;
#   - verification: the round-detail assembly the ModelChecker needs is
#     behind `if O::DETAIL`, which only the VerifyStack observer sets;
#   - tracing: the Traced tee only exists in the session driver's
#     trace-on match arm, and it inherits DETAIL from its inner
#     observer — an untraced session monomorphizes to the exact
#     pre-trace loop, with bit-identical round counts;
#   - collision detection: CdModel::ENABLED is false for NoCd (the
#     default every pre-CD caller gets) and every noise branch in the
#     hot loop is behind `if C::ENABLED`, so the no-CD grid floors
#     below must hold unchanged — with bit-identical round counts,
#     which tests/engine_bit_identity.rs pins separately;
#   - dynamic topology: TopologyModel::ENABLED is false for
#     StaticTopology (the default every unchurned caller gets), so the
#     per-round reshape hook at the top of the step compiles out
#     entirely and perf_smoke's engine is the exact pre-churn loop —
#     bit-identical round counts again pinned by
#     tests/engine_bit_identity.rs and, for the inert dynamic models
#     themselves, by tests/churn_static_equivalence.rs.
# A clean, unverified, untraced engine must therefore monomorphize to
# the pre-subsystem loop and keep its throughput (the 35% slack against
# the committed baseline is for machine variance, not for
# instrumentation cost).
#
# The streaming arrival seam is likewise zero-cost here: one-shot
# sessions use run_session / run_session_with, which run_streaming
# wraps rather than modifies — no TrafficSource type reaches the
# one-shot path, so the loop this script gates monomorphizes without
# any injection hook.
#
# The kbcast-serve front-end sits strictly downstream of that seam: the
# service drives Engine::run_streaming_until (the absolute-horizon form
# run_streaming delegates to) and adds no code to radio-net or kbcast
# beyond that resumable entry point, so the library one-shot path this
# gate measures is untouched by the service crate.
#
# The absolute floors additionally pin the word-parallel + activity-hint
# engine's order of magnitude, so a regression cannot slip through by
# also regenerating the baseline file: the reference machine measures
# ~800k rounds/s on grid64x64/single_source and ~90k on
# grid64x64/spread; the floors sit ~10x under that to absorb slower
# machines while still rejecting any return to per-node scalar polling.
set -eu
cd "$(dirname "$0")/.."

# Pre-bitset-engine floor (rounds/s): 80% of the ~6931 r/s scalar-loop
# baseline. Kept as the documented fallback applied when a scenario has
# no committed baseline entry to compute a relative floor from.
legacy_abs_floor=5545

extract_rps() {
    grep -o "\"scenario\": \"$1\"[^}]*" "$2" \
        | grep -o '"rounds_per_sec": [0-9.]*' \
        | grep -o '[0-9.]*$'
}

out=target/BENCH_engine_gate.json
KB_SCALE=quick KB_BENCH_OUT="$out" cargo run --release -q -p kbcast-bench --bin perf_smoke

# gate <scenario> <absolute floor in rounds/s>
gate() {
    scenario="$1"
    abs_floor="$2"

    baseline=$(extract_rps "$scenario" results/BENCH_engine.json || true)
    if [ -z "$baseline" ]; then
        echo "perf_gate: no $scenario baseline committed; using legacy floor" >&2
        baseline=$legacy_abs_floor
        abs_floor=$legacy_abs_floor
    fi

    fresh=$(extract_rps "$scenario" "$out")
    [ -n "$fresh" ] || {
        echo "perf_gate: perf_smoke produced no $scenario measurement" >&2
        exit 1
    }

    awk -v fresh="$fresh" -v base="$baseline" -v abs="$abs_floor" \
        -v name="$scenario" 'BEGIN {
        floor = 0.65 * base
        if (abs + 0 > floor) floor = abs + 0
        printf "perf_gate: %-26s %s rounds/s (baseline %s, floor %.1f)\n", \
            name, fresh, base, floor
        exit !(fresh + 0 >= floor)
    }' || {
        echo "perf_gate: $scenario throughput regressed below its floor" >&2
        exit 1
    }
}

gate "grid64x64/single_source" 50000
gate "grid64x64/spread" 10000
