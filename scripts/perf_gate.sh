#!/bin/sh
# Perf gate: the engine hot loop must not regress. Reruns perf_smoke
# (quick scale, scratch output via KB_BENCH_OUT) and fails if the
# grid64x64/single_source throughput drops more than 20% below the
# committed baseline in results/BENCH_engine.json.
#
# perf_smoke drives Engine<_, NoFaults> with an Observer whose
# DETAIL = false, so holding this floor is the zero-cost proof for
# three opt-in subsystems at once:
#   - faults: FaultModel::ENABLED is false for NoFaults and every fault
#     hook in the hot loop is behind `if F::ENABLED`;
#   - verification: the round-detail assembly the ModelChecker needs is
#     behind `if O::DETAIL`, which only the VerifyStack observer sets;
#   - tracing: the Traced tee only exists in the session driver's
#     trace-on match arm, and it inherits DETAIL from its inner
#     observer — an untraced session monomorphizes to the exact
#     pre-trace loop, with bit-identical round counts.
# A clean, unverified, untraced engine must therefore monomorphize to
# the pre-subsystem loop and keep its throughput (the committed
# baseline is ~6931 rounds/s on the reference machine, i.e. a floor of
# ~5545 rounds/s; the 20% slack is for machine variance, not for
# instrumentation cost).
set -eu
cd "$(dirname "$0")/.."

scenario="grid64x64/single_source"

extract_rps() {
    grep -o "\"scenario\": \"$scenario\"[^}]*" "$1" \
        | grep -o '"rounds_per_sec": [0-9.]*' \
        | grep -o '[0-9.]*$'
}

baseline=$(extract_rps results/BENCH_engine.json)
[ -n "$baseline" ] || {
    echo "perf_gate: no $scenario baseline in results/BENCH_engine.json" >&2
    exit 1
}

out=target/BENCH_engine_gate.json
KB_SCALE=quick KB_BENCH_OUT="$out" cargo run --release -q -p kbcast-bench --bin perf_smoke

fresh=$(extract_rps "$out")
[ -n "$fresh" ] || {
    echo "perf_gate: perf_smoke produced no $scenario measurement" >&2
    exit 1
}

awk -v fresh="$fresh" -v base="$baseline" 'BEGIN {
    floor = 0.8 * base
    printf "perf_gate: %s rounds/s (baseline %s, floor %.1f)\n", fresh, base, floor
    exit !(fresh + 0 >= floor)
}' || {
    echo "perf_gate: engine throughput regressed more than 20% below the baseline" >&2
    exit 1
}
