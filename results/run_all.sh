#!/bin/sh
# Regenerates every experiment table recorded in EXPERIMENTS.md.
# KB_SCALE=quick for a fast smoke pass; default (full) takes ~1-2 h.
set -u
cd "$(dirname "$0")/.."
for e in e1_amortized e2_total_time e3_scaling_n e4_scaling_delta \
         e5_stage_breakdown e6_rank e7_forward e8_ospg e9_collection \
         e10_decay e11_tails e12_ablation_coding e13_whp e14_dynamic e15_loss e16_energy; do
  echo "=== exp_$e ==="
  cargo run --release -q -p kbcast-bench --bin "exp_$e" 2>&1 | tee "results/$e.txt"
done
