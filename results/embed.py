#!/usr/bin/env python3
"""Embeds results/*.txt into EXPERIMENTS.md.

Replaces each `*(results/<name>.txt)*` marker with the file's content in
a fenced block. Idempotent only on a fresh EXPERIMENTS.md containing the
markers; run once after `sh results/run_all.sh`.
"""
import pathlib
import re

root = pathlib.Path(__file__).resolve().parent.parent
md = (root / "EXPERIMENTS.md").read_text()


def repl(m: re.Match) -> str:
    name = m.group(1)
    path = root / "results" / name
    if not path.exists():
        return m.group(0)
    body = path.read_text().rstrip()
    return f"```text\n{body}\n```"


md = re.sub(r"\*\(results/([a-z0-9_]+\.txt)\)\*", repl, md)
(root / "EXPERIMENTS.md").write_text(md)
print("embedded")
